package progqoi

// integration_test.go exercises cross-cutting paths: concurrent retrieval
// sessions over one archive, the storage round trip feeding the retrieval
// framework, corrupted-archive end-to-end behaviour, and cross-method
// result agreement.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/encoding"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
	"progqoi/internal/storage"
)

func TestConcurrentSessionsOverOneArchive(t *testing.T) {
	ds := datagen.GE("GE-conc", 8, 200, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)
	const sessions = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	bytes := make([]int64, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess, err := arch.Open()
			if err != nil {
				errs[s] = err
				return
			}
			rel := math.Pow(10, -float64(2+s%4))
			res, err := sess.RetrieveRelative([]QoI{vtot}, []float64{rel}, ranges)
			if err != nil {
				errs[s] = err
				return
			}
			actual := ActualQoIErrors([]QoI{vtot}, ds.Fields, res.Data)
			if actual[0] > res.EstErrors[0] {
				errs[s] = errors.New("guarantee violated under concurrency")
			}
			bytes[s] = res.RetrievedBytes
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
	}
	// Sessions with identical tolerances must retrieve identical bytes
	// (determinism under concurrency).
	for s := 4; s < sessions; s++ {
		if bytes[s] != bytes[s-4] {
			t.Fatalf("sessions %d and %d with same tolerance retrieved %d vs %d bytes",
				s, s-4, bytes[s], bytes[s-4])
		}
	}
}

func TestStorageToRetrievalPipeline(t *testing.T) {
	// Producer: refactor, archive to a directory store. Consumer: reopen
	// from the store, retrieve with QoI certification.
	ds := datagen.S3D(8, 10, 12, 9)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PSZ3Delta, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, "s3d", vars); err != nil {
		t.Fatal(err)
	}

	got, err := storage.ReadArchive(context.Background(), st, "s3d")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRetriever(got, core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ranges := core.QoIRanges(ds.QoIs, ds.Fields)
	tols := make([]float64, len(ds.QoIs))
	rels := make([]float64, len(ds.QoIs))
	for k := range tols {
		rels[k] = 1e-6
		tols[k] = rels[k] * ranges[k]
	}
	res, err := rt.Retrieve(context.Background(), core.Request{QoIs: ds.QoIs, Tolerances: tols, InitRel: rels})
	if err != nil {
		t.Fatal(err)
	}
	actual := core.ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
	for k, q := range ds.QoIs {
		if actual[k] > tols[k] {
			t.Errorf("%s: actual %g > tolerance %g after storage round trip", q.Name, actual[k], tols[k])
		}
	}
}

func TestCorruptedFragmentFailsLoudly(t *testing.T) {
	// A fragment corrupted at rest must produce an error during retrieval,
	// never a silently wrong reconstruction.
	ds := datagen.GE("GE-corrupt", 4, 150, 13)
	for _, m := range []Method{PSZ3, PSZ3Delta, PMGARDHB} {
		vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
			Progressive: progressive.Options{Method: m, LosslessTail: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt every fragment of the first variable: whichever one the
		// method's schedule touches first must fail to decode. (PSZ3 skips
		// straight to the snapshot matching the request, so corrupting only
		// fragment 0 would go unnoticed by design.)
		for _, frag := range vars[0].Ref.Fragments {
			if len(frag) > 8 {
				frag[len(frag)/2] ^= 0xff
				frag[len(frag)/2+1] ^= 0xff
			}
		}
		rt, err := core.NewRetriever(vars, core.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		vtot := []qoi.QoI{ds.QoIs[0]}
		_, err = rt.Retrieve(context.Background(), core.Request{
			QoIs:       vtot,
			Tolerances: []float64{1e-6},
			InitRel:    []float64{1e-6},
		})
		if err == nil || errors.Is(err, core.ErrExhausted) {
			// Either a decode error or — if the corruption landed in a
			// region the Huffman stream tolerates — a checksum-level error.
			// Silently succeeding would only be acceptable if the data were
			// still within bounds, which deflate/huffman corruption makes
			// essentially impossible; treat success as a failure.
			t.Errorf("%v: corrupted fragment did not fail (err=%v)", m, err)
		}
		_ = encoding.ErrCorrupt
	}
}

func TestMethodsAgreeOnReconstruction(t *testing.T) {
	// All four methods, same tolerance: reconstructions differ, but each
	// must be within 2×tolerance of every other (triangle inequality via
	// the shared ground truth).
	ds := datagen.GE("GE-agree", 4, 128, 17)
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields[:3])
	tol := 1e-5 * ranges[0]
	var recons [][][]float64
	for _, m := range []Method{PSZ3, PSZ3Delta, PMGARD, PMGARDHB} {
		arch, err := Refactor(ds.FieldNames[:3], ds.Fields[:3], ds.Dims, WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		sess, _ := arch.Open()
		res, err := sess.Retrieve([]QoI{vtot}, []float64{tol})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		recons = append(recons, res.Data)
	}
	for a := 0; a < len(recons); a++ {
		for b := a + 1; b < len(recons); b++ {
			ea := ActualQoIErrors([]QoI{vtot}, recons[a], recons[b])
			if ea[0] > 2*tol {
				t.Errorf("methods %d and %d disagree by %g > 2·tol", a, b, ea[0])
			}
		}
	}
}

func TestSessionIsolation(t *testing.T) {
	// Two sessions over the same archive must not share retrieval state.
	ds := datagen.GE("GE-iso", 4, 100, 19)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)
	s1, _ := arch.Open()
	s2, _ := arch.Open()
	if _, err := s1.RetrieveRelative([]QoI{vtot}, []float64{1e-8}, ranges); err != nil {
		t.Fatal(err)
	}
	if s2.RetrievedBytes() != 0 {
		t.Fatal("second session saw first session's bytes")
	}
	res2, err := s2.RetrieveRelative([]QoI{vtot}, []float64{1e-2}, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RetrievedBytes >= s1.RetrievedBytes() {
		t.Fatal("loose session should retrieve less than tight session")
	}
}
