package progqoi

// cluster_test.go proves the sharded fragment cluster end to end, in
// process: three real fragment services (httptest) serve one archive, a
// remote archive opens against all three, and retrieval must be
// bit-identical to a local session — including when one node is killed in
// the middle of a Do, in which case the fetches it owned fail over to the
// surviving replicas. This is the same invariant the cluster-e2e CI job
// certifies against real progqoid processes (see cluster_daemon_test.go).

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"progqoi/internal/datagen"
)

// startCluster serves one archive from n independent nodes.
func startCluster(t *testing.T, arch *Archive, name string, n int) []*httptest.Server {
	t.Helper()
	nodes := make([]*httptest.Server, n)
	for i := range nodes {
		hs := httptest.NewServer(serveArchiveHandler(t, arch, name))
		t.Cleanup(hs.Close)
		nodes[i] = hs
	}
	return nodes
}

// mustEqualResults asserts two retrievals agree bit for bit.
func mustEqualResults(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.EstErrors) != len(got.EstErrors) {
		t.Fatalf("%d vs %d estimated errors", len(want.EstErrors), len(got.EstErrors))
	}
	for k := range want.EstErrors {
		if want.EstErrors[k] != got.EstErrors[k] {
			t.Fatalf("QoI %d: certified error %g != %g", k, want.EstErrors[k], got.EstErrors[k])
		}
	}
	if want.RetrievedBytes != got.RetrievedBytes {
		t.Fatalf("retrieved %d != %d bytes", want.RetrievedBytes, got.RetrievedBytes)
	}
	if len(want.Data) != len(got.Data) {
		t.Fatalf("%d vs %d data slices", len(want.Data), len(got.Data))
	}
	for v := range want.Data {
		if len(want.Data[v]) != len(got.Data[v]) {
			t.Fatalf("var %d: %d vs %d points", v, len(want.Data[v]), len(got.Data[v]))
		}
		for j := range want.Data[v] {
			if math.Float64bits(want.Data[v][j]) != math.Float64bits(got.Data[v][j]) {
				t.Fatalf("var %d point %d: %g != %g", v, j, want.Data[v][j], got.Data[v][j])
			}
		}
	}
}

func clusterRequest(t *testing.T, fields []string) Request {
	t.Helper()
	vtot := TotalVelocity(0, 1, 2)
	temp, err := ParseQoI("T", "Pressure/(287.1*Density)", fields)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Targets: []Target{
		{QoI: vtot, Tolerance: 2e-4},
		{QoI: temp, Tolerance: 2e-4},
	}}
}

func TestClusterRetrieveMatchesLocal(t *testing.T) {
	ds := datagen.GE("GE-cluster", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	nodes := startCluster(t, arch, "ge", 3)

	lsess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	req := clusterRequest(t, ds.FieldNames)
	local, err := lsess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	rarch, err := OpenRemote(context.Background(), nodes[0].URL, "ge",
		WithEndpoints(nodes[1].URL, nodes[2].URL))
	if err != nil {
		t.Fatal(err)
	}
	rsess, err := rarch.Open()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := rsess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, local, remote)
	st := rarch.RemoteStats()
	if st.Failovers != 0 {
		t.Fatalf("healthy cluster recorded %d failovers", st.Failovers)
	}
	if len(st.Endpoints) != 3 {
		t.Fatalf("stats report %d endpoints", len(st.Endpoints))
	}
	// Sharding must actually spread the wire load.
	active := 0
	for _, ep := range st.Endpoints {
		if ep.Requests > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("cluster fetches used %d of 3 nodes", active)
	}
}

func TestClusterFailoverMidDoMatchesLocal(t *testing.T) {
	ds := datagen.GE("GE-cluster-kill", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}

	req := clusterRequest(t, ds.FieldNames)
	lsess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	local, err := lsess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	for victim := 0; victim < 3; victim++ {
		t.Run(fmt.Sprintf("kill-node-%d", victim), func(t *testing.T) {
			nodes := startCluster(t, arch, "ge", 3)
			rarch, err := OpenRemote(context.Background(), nodes[0].URL, "ge",
				WithEndpoints(nodes[1].URL, nodes[2].URL), WithReplication(2))
			if err != nil {
				t.Fatal(err)
			}
			rsess, err := rarch.Open()
			if err != nil {
				t.Fatal(err)
			}
			killed := false
			kreq := req
			kreq.OnProgress = func(it Iteration) {
				// Kill the victim after the first certify-loop iteration:
				// fetches already landed from it, and the iterations still
				// to come must reroute to its replicas mid-Do.
				if !killed {
					killed = true
					nodes[victim].CloseClientConnections()
					nodes[victim].Close()
				}
			}
			remote, err := rsess.Do(context.Background(), kreq)
			if err != nil {
				t.Fatalf("Do with node %d killed mid-flight: %v", victim, err)
			}
			if !killed {
				t.Fatal("retrieval finished in one iteration; the kill never happened mid-Do")
			}
			mustEqualResults(t, local, remote)
			st := rarch.RemoteStats()
			if st.Failovers == 0 {
				t.Fatalf("no rerouted fetches recorded after killing node %d: %+v", victim, st)
			}
			var victimErrors int64
			for _, ep := range st.Endpoints {
				if ep.URL == nodes[victim].URL {
					victimErrors = ep.Errors
				}
			}
			if victimErrors == 0 {
				t.Fatalf("killed node %d shows no endpoint errors: %+v", victim, st.Endpoints)
			}
		})
	}
}
