// Command progqoi refactors raw float64 fields into progressive archives
// and retrieves them under QoI error tolerances.
//
// Refactor a little-endian float64 binary file (one field per file):
//
//	progqoi refactor -dims 512x512 -method pmgard-hb -out field.pq field.f64
//
// Retrieve a QoI from one or more archives within a tolerance:
//
//	progqoi retrieve -qoi "sqrt(Vx^2+Vy^2+Vz^2)" -tol 1e-4 \
//	    -fields Vx,Vy,Vz -out vtot_recon vx.pq vy.pq vz.pq
//
// Inspect an archive:
//
//	progqoi info field.pq
//
// Pack several fields into a servable archive directory and retrieve over
// the wire from a running progqoid (see cmd/progqoid):
//
//	progqoi pack -dims 512x512 -dataset ge -fields Vx,Vy,Vz \
//	    -store ./archives -workers 8 vx.f64 vy.f64 vz.f64
//	progqoi retrieve -remote http://host:9123 -dataset ge \
//	    -qoi "sqrt(Vx^2+Vy^2+Vz^2)" -tol 1e-4 -out vtot
//
// pack streams — one variable in memory at a time, variable blobs flushed
// before the manifest — and parallelizes the per-bitplane encode under
// -workers, with byte-identical output at every setting. Packing into a
// directory a progqoid already serves, then POSTing its
// /v1/datasets/reload admin route, publishes the dataset live.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"progqoi"
	"progqoi/internal/core"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
	"progqoi/internal/stats"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "refactor":
		err = cmdRefactor(os.Args[2:])
	case "pack":
		err = cmdPack(os.Args[2:])
	case "retrieve":
		err = cmdRetrieve(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "progqoi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  progqoi refactor -dims NxMx... [-method NAME] -out OUT.pq IN.f64
  progqoi pack -dims NxMx... -dataset NAME -fields A,B,... -store DIR|s3://bucket[/prefix] [-method NAME] [-workers N] IN1.f64 IN2.f64 ...
  progqoi retrieve -qoi FORMULA -tol T -fields A,B,... [-timeout D] [-progress] [-out PREFIX] IN1.pq IN2.pq ...
  progqoi retrieve -remote REF [-dataset NAME] -qoi FORMULA -tol T [-timeout D] [-progress] [-out PREFIX]
      REF: http(s)://host[/base]/dataset or s3://bucket[/prefix]/dataset (PROGQOI_S3_* env)
  progqoi info IN.pq
  progqoi verify IN.pq ORIGINAL.f64
methods: psz3, psz3-delta, pmgard, pmgard-hb (default)`)
}

// newFlagSet builds a subcommand flag set that reports parse failures as
// returned errors instead of exiting the process (matching progqoid), so
// callers — and tests — see them; -h stays a clean exit via flag.ErrHelp.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// parsed maps fs.Parse results to subcommand errors: help is success (the
// usage text was already printed), everything else propagates.
func parsed(fs *flag.FlagSet, args []string) (help bool, err error) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func parseMethod(s string) (progressive.Method, error) {
	switch strings.ToLower(s) {
	case "psz3":
		return progressive.PSZ3, nil
	case "psz3-delta", "psz3delta":
		return progressive.PSZ3Delta, nil
	case "pmgard":
		return progressive.PMGARD, nil
	case "pmgard-hb", "pmgardhb", "":
		return progressive.PMGARDHB, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func readF64(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("%s: size %d not a multiple of 8", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

func writeF64(path string, vals []float64) error {
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

func cmdRefactor(args []string) error {
	fs := newFlagSet("refactor")
	dimsStr := fs.String("dims", "", "grid dims, e.g. 512x512")
	methodStr := fs.String("method", "pmgard-hb", "progressive method")
	out := fs.String("out", "", "output archive path")
	if help, err := parsed(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() != 1 || *dimsStr == "" || *out == "" {
		return fmt.Errorf("refactor needs -dims, -out and one input file")
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	method, err := parseMethod(*methodStr)
	if err != nil {
		return err
	}
	data, err := readF64(fs.Arg(0))
	if err != nil {
		return err
	}
	ref, err := progressive.Refactor(data, dims, progressive.Options{Method: method, LosslessTail: true})
	if err != nil {
		return err
	}
	buf := ref.Marshal()
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d values -> %d fragments, %d bytes (%.2fx vs raw)\n",
		*out, len(data), len(ref.Fragments), len(buf), float64(len(data)*8)/float64(len(buf)))
	return nil
}

// cmdPack refactors several fields into one archive written to a storage
// directory, ready for progqoid to serve. It streams: each input file is
// loaded, refactored with the -workers encode pool, and flushed before the
// next is touched, with the manifest written last — so packing is crash-
// safe (a killed pack leaves only ignored orphan blobs) and its memory
// high-water mark is one variable, not the dataset. Packing into the
// directory of a running progqoid followed by POST /v1/datasets/reload
// publishes the dataset with zero downtime.
func cmdPack(args []string) error {
	fs := newFlagSet("pack")
	dimsStr := fs.String("dims", "", "grid dims, e.g. 512x512")
	methodStr := fs.String("method", "pmgard-hb", "progressive method")
	dataset := fs.String("dataset", "", "dataset name")
	fieldsStr := fs.String("fields", "", "comma-separated field names, one per input file")
	storeDir := fs.String("store", "", "archive store to write: a directory, file://dir, or s3://bucket[/prefix] (endpoint/credentials via PROGQOI_S3_*)")
	workers := fs.Int("workers", 0, "encode worker pool bound (0 = all cores, 1 = sequential; output identical)")
	if help, err := parsed(fs, args); help || err != nil {
		return err
	}
	names := strings.Split(*fieldsStr, ",")
	if fs.NArg() == 0 || *dimsStr == "" || *dataset == "" || *storeDir == "" || len(names) != fs.NArg() {
		return fmt.Errorf("pack needs -dims, -dataset, -store and -fields matching the input count")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("pack: -fields contains an empty name")
		}
		if seen[n] {
			return fmt.Errorf("pack: duplicate field name %q", n)
		}
		seen[n] = true
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	method, err := parseMethod(*methodStr)
	if err != nil {
		return err
	}
	st, err := objstore.ResolveStore(*storeDir, objstore.EnvOptions())
	if err != nil {
		return err
	}
	ne := 1
	for _, d := range dims {
		ne *= d
	}
	start := time.Now()
	var rawBytes int64
	stored, err := storage.RefactorTo(context.Background(), st, *dataset, names, dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: method, LosslessTail: true},
		MaskZeros:   true,
		Workers:     *workers,
	}, func(i int) ([]float64, error) {
		data, err := readF64(fs.Arg(i))
		if err != nil {
			return nil, err
		}
		if len(data) != ne {
			return nil, fmt.Errorf("%s: %d values, want %d for dims %s", fs.Arg(i), len(data), ne, *dimsStr)
		}
		rawBytes += int64(len(data)) * 8
		return data, nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	mbps := float64(rawBytes) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("%s: packed %d variable(s) into dataset %q (%d stored bytes) in %.2fs — %.1f MiB/s ingest; serve with: progqoid -store %s\n",
		*storeDir, len(names), *dataset, stored, elapsed.Seconds(), mbps, *storeDir)
	return nil
}

// reportRetrieval prints the certified error and byte accounting of one
// retrieval; extra (optional) extends the byte line, e.g. with wire stats.
func reportRetrieval(res *core.Result, tol float64, ne, nvars int, extra string) {
	fmt.Printf("certified max QoI error: %s (tolerance %s)\n",
		stats.FormatG(res.EstErrors[0]), stats.FormatG(tol))
	fmt.Printf("retrieved %d bytes (%.3f bits/value), %d iterations%s\n",
		res.RetrievedBytes, stats.Bitrate(res.RetrievedBytes, ne*nvars), res.Iterations, extra)
}

// writeRecons writes each reconstructed field to PREFIX_<field>.f64,
// skipping variables the request never touched.
func writeRecons(names []string, data [][]float64, outPrefix string) error {
	if outPrefix == "" {
		return nil
	}
	for i, name := range names {
		if data[i] == nil {
			continue
		}
		path := fmt.Sprintf("%s_%s.f64", outPrefix, name)
		if err := writeF64(path, data[i]); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// progressPrinter returns an OnProgress callback that renders one line per
// certify-loop iteration.
func progressPrinter() func(progqoi.Iteration) {
	return func(it progqoi.Iteration) {
		wire := ""
		if it.WireBytes > 0 {
			wire = fmt.Sprintf(", wire %d B", it.WireBytes)
		}
		fmt.Fprintf(os.Stderr, "  iter %2d: est %s, retrieved %d B%s\n",
			it.N, stats.FormatG(it.EstErrors[0]), it.RetrievedBytes, wire)
	}
}

// writeTrace renders tr as Chrome trace_event JSON at path; it runs even
// after a failed retrieval so a partial trace can explain the failure.
// Nil tr or empty path is a no-op.
func writeTrace(tr *progqoi.Trace, path string) error {
	if tr == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote trace %s\n", path)
	return nil
}

// cmdRetrieveRemote runs the retrieval against a remote archive
// reference — a progqoid fragment service (http://host/dataset) or an
// object-store bucket (s3://bucket/prefix/dataset) — instead of local
// archive files.
func cmdRetrieveRemote(ctx context.Context, ref, formula string, tol float64, outPrefix string, progress bool, tr *progqoi.Trace, tracePath string) error {
	arch, err := progqoi.Open(ctx, ref)
	if err != nil {
		return err
	}
	names := arch.FieldNames()
	q, err := progqoi.ParseQoI("qoi", formula, names)
	if err != nil {
		return err
	}
	sess, err := arch.Open(progqoi.WithTrace(tr))
	if err != nil {
		return err
	}
	req := progqoi.Request{Targets: []progqoi.Target{{QoI: q, Tolerance: tol}}}
	if progress {
		req.OnProgress = progressPrinter()
	}
	res, err := sess.Do(ctx, req)
	if terr := writeTrace(tr, tracePath); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	ne := 1
	for _, d := range arch.Dims() {
		ne *= d
	}
	var extra string
	switch {
	case arch.Remote():
		ws := arch.RemoteStats()
		extra = fmt.Sprintf("; wire: %d bytes in %d requests (%d cache hits)",
			ws.WireBytes, ws.WireRequests, ws.CacheHits)
	case arch.StoreBacked():
		ss := arch.StoreStats()
		extra = fmt.Sprintf("; store: %d bytes in %d cold fetches", ss.ColdFetchBytes, ss.ColdFetches)
	}
	reportRetrieval(res, tol, ne, len(names), extra)
	return writeRecons(names, res.Data, outPrefix)
}

func cmdRetrieve(args []string) error {
	fs := newFlagSet("retrieve")
	formula := fs.String("qoi", "", "QoI formula over the named fields")
	tol := fs.Float64("tol", 0, "absolute QoI error tolerance")
	fieldsStr := fs.String("fields", "", "comma-separated field names, one per archive")
	outPrefix := fs.String("out", "", "write reconstructed fields to PREFIX_<field>.f64")
	remote := fs.String("remote", "", "remote archive reference: http(s)://host[/base]/dataset, s3://bucket[/prefix]/dataset (endpoint/credentials via PROGQOI_S3_*), or a base URL combined with -dataset")
	dataset := fs.String("dataset", "", "dataset name appended to -remote (optional when -remote already names the dataset)")
	timeout := fs.Duration("timeout", time.Duration(0), "abort the retrieval after this long (0 = no limit)")
	progress := fs.Bool("progress", false, "print one line per retrieval iteration")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the retrieval phases to this file")
	if help, err := parsed(fs, args); help || err != nil {
		return err
	}
	var tr *progqoi.Trace
	if *tracePath != "" {
		tr = progqoi.NewTrace()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *remote != "" {
		if *formula == "" || !(*tol > 0) || fs.NArg() != 0 {
			return fmt.Errorf("remote retrieve needs -qoi, -tol > 0 and no archive files")
		}
		ref := strings.TrimSuffix(*remote, "/")
		if *dataset != "" {
			ref += "/" + *dataset
		}
		return cmdRetrieveRemote(ctx, ref, *formula, *tol, *outPrefix, *progress, tr, *tracePath)
	}
	names := strings.Split(*fieldsStr, ",")
	if fs.NArg() == 0 || *formula == "" || !(*tol > 0) || len(names) != fs.NArg() {
		return fmt.Errorf("retrieve needs -qoi, -tol > 0, and -fields matching the archive count")
	}
	expr, err := qoi.Parse(*formula, names)
	if err != nil {
		return err
	}
	vars := make([]*core.Variable, fs.NArg())
	for i := 0; i < fs.NArg(); i++ {
		buf, err := os.ReadFile(fs.Arg(i))
		if err != nil {
			return err
		}
		ref, err := progressive.Unmarshal(buf)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(i), err)
		}
		// Range metadata travels with the CLI as the loosest prefix bound
		// (a conservative stand-in; Algorithm 4 tightens from there).
		rng := 1.0
		if len(ref.PrefixBounds) > 0 && ref.PrefixBounds[0] > 0 && !math.IsInf(ref.PrefixBounds[0], 0) {
			rng = ref.PrefixBounds[0] * 10
		}
		vars[i] = &core.Variable{Name: names[i], Ref: ref, Range: rng}
	}
	rt, err := core.NewRetriever(vars, core.Config{Trace: tr}, nil)
	if err != nil {
		return err
	}
	creq := core.Request{
		QoIs:       []qoi.QoI{{Name: "qoi", Expr: expr}},
		Tolerances: []float64{*tol},
	}
	if *progress {
		creq.OnProgress = progressPrinter()
	}
	res, err := rt.Retrieve(ctx, creq)
	if terr := writeTrace(tr, *tracePath); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	reportRetrieval(res, *tol, vars[0].Ref.NumElements(), len(vars), "")
	return writeRecons(names, res.Data, *outPrefix)
}

// cmdVerify replays a progressive retrieval against the original data and
// prints, per request level, the guaranteed bound next to the measured
// error — the bound must dominate at every level.
func cmdVerify(args []string) error {
	fs := newFlagSet("verify")
	if help, err := parsed(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("verify needs an archive and the original .f64 file")
	}
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ref, err := progressive.Unmarshal(buf)
	if err != nil {
		return err
	}
	orig, err := readF64(fs.Arg(1))
	if err != nil {
		return err
	}
	if len(orig) != ref.NumElements() {
		return fmt.Errorf("original has %d values, archive %d", len(orig), ref.NumElements())
	}
	rd, err := progressive.NewReader(ref, nil)
	if err != nil {
		return err
	}
	rng := stats.Range(orig)
	if rng == 0 {
		rng = 1
	}
	fmt.Printf("%-12s  %-12s  %-12s  %-10s  %s\n", "rel_target", "bound", "actual", "bitrate", "ok")
	violations := 0
	for i := 1; i <= 14; i++ {
		target := rng * math.Pow(10, -float64(i))
		bound, err := rd.Advance(context.Background(), target)
		if err != nil {
			return err
		}
		rec, err := rd.Data()
		if err != nil {
			return err
		}
		actual := stats.MaxAbsError(orig, rec)
		ok := actual <= bound
		if !ok {
			violations++
		}
		fmt.Printf("%-12s  %-12s  %-12s  %-10.3f  %v\n",
			stats.FormatG(target/rng), stats.FormatG(bound/rng), stats.FormatG(actual/rng),
			stats.Bitrate(rd.RetrievedBytes(), len(orig)), ok)
	}
	if violations > 0 {
		return fmt.Errorf("%d bound violations — archive is NOT sound", violations)
	}
	fmt.Println("all bounds dominate the measured errors: archive verified")
	return nil
}

func cmdInfo(args []string) error {
	fs := newFlagSet("info")
	if help, err := parsed(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs one archive")
	}
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ref, err := progressive.Unmarshal(buf)
	if err != nil {
		return err
	}
	dims := make([]string, len(ref.Dims))
	for i, d := range ref.Dims {
		dims[i] = fmt.Sprint(d)
	}
	fmt.Printf("method:     %s\n", ref.Method)
	fmt.Printf("dims:       %s (%d values)\n", strings.Join(dims, "x"), ref.NumElements())
	fmt.Printf("fragments:  %d (%d bytes total)\n", len(ref.Fragments), ref.TotalBytes())
	if len(ref.PrefixBounds) > 0 {
		fmt.Printf("bounds:     %s .. %s\n",
			stats.FormatG(ref.PrefixBounds[0]), stats.FormatG(ref.PrefixBounds[len(ref.PrefixBounds)-1]))
	}
	return nil
}
