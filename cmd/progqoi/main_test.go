package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func writeField(t *testing.T, path string, n int) []float64 {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 75*math.Sin(float64(i)/40) + 12*math.Cos(float64(i)/9)
	}
	if err := writeF64(path, vals); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestParseDims(t *testing.T) {
	d, err := parseDims("4x5x6")
	if err != nil || len(d) != 3 || d[0] != 4 || d[2] != 6 {
		t.Fatalf("%v %v", d, err)
	}
	for _, bad := range []string{"", "x", "0", "3x-1", "axb"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseMethod(t *testing.T) {
	for _, name := range []string{"psz3", "psz3-delta", "pmgard", "pmgard-hb", ""} {
		if _, err := parseMethod(name); err != nil {
			t.Errorf("%q rejected: %v", name, err)
		}
	}
	if _, err := parseMethod("zfp"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestF64RoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.f64")
	want := writeField(t, path, 100)
	got, err := readF64(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d differs", i)
		}
	}
	// Odd-size file rejected.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readF64(path); err == nil {
		t.Fatal("odd-size file accepted")
	}
}

func TestRefactorInfoVerifyRetrieveWorkflow(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.f64")
	arch := filepath.Join(dir, "x.pq")
	writeField(t, in, 5000)

	if err := cmdRefactor([]string{"-dims", "5000", "-out", arch, in}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{arch}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{arch, in}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "recon")
	if err := cmdRetrieve([]string{"-qoi", "sqrt(x^2+1)", "-tol", "1e-4", "-fields", "x", "-out", out, arch}); err != nil {
		t.Fatal(err)
	}
	rec, err := readF64(out + "_x.f64")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 5000 {
		t.Fatalf("reconstruction has %d values", len(rec))
	}
	// The retrieved QoI sqrt(x²+1) must be within tolerance pointwise.
	orig, _ := readF64(in)
	for i := range orig {
		qo := math.Sqrt(orig[i]*orig[i] + 1)
		qr := math.Sqrt(rec[i]*rec[i] + 1)
		if math.Abs(qo-qr) > 1e-4 {
			t.Fatalf("QoI error %g at %d exceeds tolerance", math.Abs(qo-qr), i)
		}
	}
}

func TestRefactorAllMethods(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.f64")
	writeField(t, in, 800)
	for _, m := range []string{"psz3", "psz3-delta", "pmgard", "pmgard-hb"} {
		arch := filepath.Join(dir, m+".pq")
		if err := cmdRefactor([]string{"-dims", "800", "-method", m, "-out", arch, in}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := cmdVerify([]string{arch, in}); err != nil {
			t.Fatalf("%s verify: %v", m, err)
		}
	}
}

// TestSubcommandFlagParseErrors: every subcommand's flag set uses
// ContinueOnError, so an unknown or malformed flag comes back as an error
// (testable, scriptable exit status) instead of exiting the process from
// inside the flag package — and -h is help, not a failure.
func TestSubcommandFlagParseErrors(t *testing.T) {
	cmds := map[string]func([]string) error{
		"refactor": cmdRefactor,
		"pack":     cmdPack,
		"retrieve": cmdRetrieve,
		"info":     cmdInfo,
		"verify":   cmdVerify,
	}
	for name, cmd := range cmds {
		if err := cmd([]string{"-no-such-flag"}); err == nil {
			t.Errorf("%s: unknown flag accepted", name)
		}
		if err := cmd([]string{"-h"}); err != nil {
			t.Errorf("%s: -h returned %v, want nil", name, err)
		}
	}
	// A malformed value for a typed flag is a parse error, not an exit.
	if err := cmdRetrieve([]string{"-tol", "not-a-number"}); err == nil {
		t.Error("malformed -tol accepted")
	}
	if err := cmdPack([]string{"-workers", "x"}); err == nil {
		t.Error("malformed -workers accepted")
	}
}

// TestPackWorkersIdenticalOutput drives pack's streaming ingest at both
// pool settings and checks the archive directories are byte-identical —
// the CLI surface of the bit-identity guarantee.
func TestPackWorkersIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	inA := filepath.Join(dir, "a.f64")
	inB := filepath.Join(dir, "b.f64")
	writeField(t, inA, 1200)
	writeField(t, inB, 1200)
	storeSeq := filepath.Join(dir, "seq")
	storePar := filepath.Join(dir, "par")
	if err := cmdPack([]string{"-dims", "1200", "-dataset", "demo", "-fields", "A,B",
		"-store", storeSeq, "-workers", "1", inA, inB}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPack([]string{"-dims", "1200", "-dataset", "demo", "-fields", "A,B",
		"-store", storePar, "-workers", "8", inA, inB}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(storeSeq)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 { // manifest + two variable blobs
		t.Fatalf("%d store entries", len(ents))
	}
	for _, e := range ents {
		a, err := os.ReadFile(filepath.Join(storeSeq, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(storePar, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between -workers 1 and 8", e.Name())
		}
	}
	// Wrong-size input is caught per file with the offending path named.
	short := filepath.Join(dir, "short.f64")
	writeField(t, short, 600)
	err = cmdPack([]string{"-dims", "1200", "-dataset", "bad", "-fields", "S",
		"-store", filepath.Join(dir, "bad"), short})
	if err == nil || !strings.Contains(err.Error(), "short.f64") {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestCommandValidation(t *testing.T) {
	if err := cmdRefactor([]string{"-dims", "10"}); err == nil {
		t.Error("refactor without -out/input accepted")
	}
	if err := cmdRetrieve([]string{"-qoi", "x", "-tol", "1e-3"}); err == nil {
		t.Error("retrieve without archives accepted")
	}
	if err := cmdInfo([]string{}); err == nil {
		t.Error("info without archive accepted")
	}
	if err := cmdVerify([]string{"one"}); err == nil {
		t.Error("verify with one arg accepted")
	}
}

// TestRetrieveTimeoutFlag drives the context plumbing end to end from the
// CLI: a generous -timeout succeeds, and against a stalled fragment
// service the deadline aborts the retrieval with DeadlineExceeded.
func TestRetrieveTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.f64")
	arch := filepath.Join(dir, "x.pq")
	writeField(t, in, 2000)
	if err := cmdRefactor([]string{"-dims", "2000", "-out", arch, in}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRetrieve([]string{"-timeout", "1m", "-progress",
		"-qoi", "sqrt(x^2+1)", "-tol", "1e-3", "-fields", "x", arch}); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}

	// A server that never answers: the handler parks until the client's
	// deadline tears the request down.
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer stalled.Close()
	err := cmdRetrieve([]string{"-remote", stalled.URL, "-dataset", "ge",
		"-qoi", "x", "-tol", "1e-3", "-timeout", "100ms"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from stalled remote, got %v", err)
	}
}

func TestVerifyDetectsMismatchedOriginal(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.f64")
	arch := filepath.Join(dir, "x.pq")
	writeField(t, in, 500)
	if err := cmdRefactor([]string{"-dims", "500", "-out", arch, in}); err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.f64")
	writeField(t, short, 400)
	if err := cmdVerify([]string{arch, short}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestInfoRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pq")
	raw := make([]byte, 64)
	binary.LittleEndian.PutUint32(raw, 0xffffffff)
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{bad}); err == nil {
		t.Fatal("garbage archive accepted")
	}
}

func TestPackAndRemoteRetrieveWorkflow(t *testing.T) {
	dir := t.TempDir()
	inA := filepath.Join(dir, "a.f64")
	inB := filepath.Join(dir, "b.f64")
	writeField(t, inA, 900)
	writeField(t, inB, 900)
	store := filepath.Join(dir, "archives")
	if err := cmdPack([]string{"-dims", "900", "-dataset", "demo", "-fields", "A,B", "-store", store, inA, inB}); err != nil {
		t.Fatal(err)
	}

	st, err := storage.NewDirStore(store)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	out := filepath.Join(dir, "remote")
	err = cmdRetrieve([]string{"-remote", hs.URL, "-dataset", "demo",
		"-qoi", "sqrt(A^2+B^2)", "-tol", "1e-3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	recA, err := readF64(out + "_A.f64")
	if err != nil {
		t.Fatal(err)
	}
	recB, err := readF64(out + "_B.f64")
	if err != nil {
		t.Fatal(err)
	}
	origA, _ := readF64(inA)
	origB, _ := readF64(inB)
	for i := range origA {
		qo := math.Sqrt(origA[i]*origA[i] + origB[i]*origB[i])
		qr := math.Sqrt(recA[i]*recA[i] + recB[i]*recB[i])
		if math.Abs(qo-qr) > 1e-3 {
			t.Fatalf("remote QoI error %g at %d exceeds tolerance", math.Abs(qo-qr), i)
		}
	}

	// Remote mode rejects malformed invocations.
	if err := cmdRetrieve([]string{"-remote", hs.URL, "-qoi", "A", "-tol", "1e-3"}); err == nil {
		t.Fatal("remote retrieve without -dataset accepted")
	}
	if err := cmdRetrieve([]string{"-remote", hs.URL, "-dataset", "demo", "-qoi", "A", "-tol", "1e-3", "x.pq"}); err == nil {
		t.Fatal("remote retrieve with archive files accepted")
	}
	if err := cmdPack([]string{"-dims", "900", "-fields", "A", "-store", store, inA}); err == nil {
		t.Fatal("pack without -dataset accepted")
	}
}

// TestRetrieveTraceFlag runs -trace through both the local and remote
// retrieval paths and checks the emitted files are valid Chrome
// trace_event JSON with the expected phase categories.
func TestRetrieveTraceFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.f64")
	arch := filepath.Join(dir, "x.pq")
	writeField(t, in, 2000)
	if err := cmdRefactor([]string{"-dims", "2000", "-out", arch, in}); err != nil {
		t.Fatal(err)
	}

	parse := func(path string) map[string]bool {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
				Cat  string `json:"cat"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: not valid trace JSON: %v", path, err)
		}
		cats := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				cats[ev.Cat] = true
			}
		}
		return cats
	}

	local := filepath.Join(dir, "local.json")
	if err := cmdRetrieve([]string{"-qoi", "x^2", "-tol", "1e-3", "-fields", "x", "-trace", local, arch}); err != nil {
		t.Fatal(err)
	}
	cats := parse(local)
	for _, want := range []string{"do", "decode", "commit", "estimate"} {
		if !cats[want] {
			t.Errorf("local trace missing %q spans (have %v)", want, cats)
		}
	}

	store := filepath.Join(dir, "archives")
	if err := cmdPack([]string{"-dims", "2000", "-dataset", "demo", "-fields", "x", "-store", store, in}); err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewDirStore(store)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	remote := filepath.Join(dir, "remote.json")
	err = cmdRetrieve([]string{"-remote", hs.URL, "-dataset", "demo",
		"-qoi", "x^2", "-tol", "1e-3", "-trace", remote})
	if err != nil {
		t.Fatal(err)
	}
	cats = parse(remote)
	for _, want := range []string{"do", "plan", "fetch", "http", "decode", "estimate"} {
		if !cats[want] {
			t.Errorf("remote trace missing %q spans (have %v)", want, cats)
		}
	}
}
