package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"progqoi/internal/bench"
	"progqoi/internal/server"
)

// stdoutFile gives run a real *os.File to print summaries to, and a way
// to read back what it printed.
func stdoutFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunFlagErrors(t *testing.T) {
	out := stdoutFile(t)
	if err := run([]string{"-no-such-flag"}, out); err == nil {
		t.Fatal("unknown flag: want error")
	}
	// -h prints usage and is not a failure.
	if err := run([]string{"-h"}, out); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "missing.json")}, out); err == nil {
		t.Fatal("missing scenario file: want error")
	}
}

// tinyScenarioFile writes a one-node, one-tenant scenario small enough
// to run end to end in a test.
func tinyScenarioFile(t *testing.T) string {
	t.Helper()
	sc := bench.Scenario{
		Name:      "progqoibench-test",
		Dataset:   "bench-cli",
		Blocks:    2,
		BlockSize: 96,
		Seed:      5,
		Nodes:     1,
		Tenants: []bench.TenantLoad{{
			Tenant:    server.Tenant{Name: "cli-tenant", Token: "cli-tenant-token", RateLimit: 10000},
			Sessions:  1,
			Requests:  2,
			Tolerance: 2e-3,
		}},
	}
	blob, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, blob, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRecordAndEvaluateSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real in-process scenario")
	}
	dir := t.TempDir()
	sumPath := filepath.Join(dir, "summary.json")
	sloPath := filepath.Join(dir, "slo.json")
	args := []string{
		"-scenario", tinyScenarioFile(t),
		"-out", sumPath,
		"-record-slo", sloPath,
		// Evaluating the file recorded by this same run must pass: the
		// ceilings are 2x what was just measured, armed for this machine.
		"-slo", sloPath,
	}
	if err := run(args, stdoutFile(t)); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sum bench.Summary
	blob, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &sum); err != nil {
		t.Fatalf("-out summary: %v", err)
	}
	if sum.Scenario != "progqoibench-test" || len(sum.Tenants) != 1 || sum.Tenants[0].FailedSessions != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	slo, err := bench.LoadSLO(sloPath)
	if err != nil {
		t.Fatalf("-record-slo output: %v", err)
	}
	if !slo.Armed() {
		t.Fatal("recorded SLO must be armed on the recording machine")
	}
	if _, ok := slo.P99CeilingSeconds["cli-tenant"]; !ok {
		t.Fatalf("recorded SLO lacks the tenant ceiling: %+v", slo)
	}
}

func TestRunSLOGateFails(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real in-process scenario")
	}
	// An impossible ceiling must fail the gate when armed for this CPU
	// class (zero is not possible: every Do takes time).
	slo := bench.RecordSLO(&bench.Summary{CPUs: runtime.NumCPU(), Tenants: []bench.TenantSummary{{Name: "cli-tenant"}}})
	slo.P99CeilingSeconds["cli-tenant"] = 0.0000001
	blob, err := json.Marshal(slo)
	if err != nil {
		t.Fatal(err)
	}
	sloPath := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(sloPath, blob, 0o600); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-scenario", tinyScenarioFile(t), "-slo", sloPath}, stdoutFile(t))
	if err == nil {
		t.Fatal("armed impossible ceiling: want SLO violation error")
	}
}

func TestRunEndpointsMode(t *testing.T) {
	// A dead remote: sessions fail, which the summary records; without
	// -slo that is not a process failure (the gate is opt-in).
	hs := httptest.NewServer(http.NotFoundHandler())
	defer hs.Close()
	args := []string{
		"-scenario", tinyScenarioFile(t),
		// Exercises the endpoint list parsing: whitespace, trailing
		// slashes and empty entries are cleaned up.
		"-endpoints", " " + hs.URL + "/ ,," + hs.URL,
	}
	if err := run(args, stdoutFile(t)); err != nil {
		t.Fatalf("run: %v", err)
	}
}
