// Command progqoibench is the synthetic load driver for multi-tenant
// progqoid clusters: it runs N concurrent retrieval sessions with mixed
// QoI targets and tenant identities — against an in-process cluster it
// starts itself, or against live endpoints — and reports per-tenant
// throughput, latency quantiles (p50/p95/p99) and error counts as a
// machine-readable JSON summary.
//
//	progqoibench -out summary.json                 # pinned in-process scenario
//	progqoibench -scenario load.json -out sum.json # custom scenario
//	progqoibench -slo SLO_pr9.json -out sum.json   # evaluate the SLO gate
//	progqoibench -record-slo SLO_pr9.json          # re-record the SLO on this machine
//
// With -slo the summary is evaluated against the recorded service-level
// objectives: failed sessions (or results diverging from the local
// reference) fail the run on any machine, while p99 ceilings and the
// interactive-vs-bulk fairness floor are hard only when the SLO file's
// recorded CPU count matches this machine — the same arming convention
// as cmd/benchgate, so a ceiling recorded on a laptop stays advisory on
// CI until a runner-recorded file lands.
//
// The slo-gate CI job runs the pinned scenario against a 3-node
// in-process cluster on every push; see .github/workflows/ci.yml.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"progqoi/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "progqoibench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("progqoibench", flag.ContinueOnError)
	scenarioPath := fs.String("scenario", "", "scenario JSON (empty runs the pinned default scenario)")
	endpoints := fs.String("endpoints", "", "comma-separated progqoid base URLs: drive a live cluster instead of an in-process one (disables bit-identity checks)")
	out := fs.String("out", "", "write the JSON summary to this file (always printed to stdout)")
	sloPath := fs.String("slo", "", "evaluate the summary against this SLO file; violations fail per its arming rules")
	recordSLO := fs.String("record-slo", "", "write a new SLO file from this run's measurements (ceilings = 2x measured p99), armed for this machine's CPU class")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	sc := bench.DefaultScenario()
	if *scenarioPath != "" {
		var err error
		if sc, err = bench.LoadScenario(*scenarioPath); err != nil {
			return err
		}
	}
	if *endpoints != "" {
		sc.Endpoints = nil
		for _, e := range strings.Split(*endpoints, ",") {
			if e = strings.TrimSpace(e); e != "" {
				sc.Endpoints = append(sc.Endpoints, strings.TrimRight(e, "/"))
			}
		}
	}

	sum, err := bench.Run(context.Background(), sc)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *recordSLO != "" {
		slo := bench.RecordSLO(sum)
		blob, err := json.MarshalIndent(slo, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*recordSLO, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "progqoibench: recorded SLO for %d CPUs to %s\n", slo.CPUs, *recordSLO)
	}

	if *sloPath == "" {
		return nil
	}
	slo, err := bench.LoadSLO(*sloPath)
	if err != nil {
		return err
	}
	hard, perf := slo.Evaluate(sum)
	for _, v := range perf {
		if slo.Armed() {
			fmt.Fprintln(os.Stderr, "progqoibench: SLO violation:", v)
		} else {
			fmt.Fprintf(os.Stderr, "progqoibench: advisory (SLO recorded on %d CPUs, this machine has a different class): %s\n", slo.CPUs, v)
		}
	}
	for _, v := range hard {
		fmt.Fprintln(os.Stderr, "progqoibench: SLO violation:", v)
	}
	if len(hard) > 0 || (slo.Armed() && len(perf) > 0) {
		return fmt.Errorf("%d SLO violation(s)", len(hard)+len(perf))
	}
	fmt.Fprintln(os.Stderr, "progqoibench: SLO satisfied")
	return nil
}
