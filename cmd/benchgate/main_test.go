package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestParseNormalizesGomaxprocsSuffix(t *testing.T) {
	lines := []string{
		"BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op\t 17.44 MB/s",
		"BenchmarkAdvanceParallel-4 \t 100\t 260000 ns/op",
		"BenchmarkAdvanceParallel \t 100\t 240000 ns/op",
		"BenchmarkMultiQoIDo/workers=1-4 \t 10\t 1000000 ns/op",
		"goos: linux",
		"PASS",
	}
	got := parse(lines)
	if len(got["BenchmarkAdvanceParallel"].ns) != 3 {
		t.Fatalf("parallel samples: %v", got)
	}
	if len(got["BenchmarkMultiQoIDo/workers=1"].ns) != 1 {
		t.Fatalf("sub-benchmark samples: %v", got)
	}
}

func TestParseBenchmemColumns(t *testing.T) {
	lines := []string{
		// Plain -benchmem line.
		"BenchmarkDoTraceOff-4 \t 4\t 53538622 ns/op\t 26995724 B/op\t 3159 allocs/op",
		// Custom metric between ns/op and the memory columns.
		"BenchmarkDoTraceOn-4 \t 4\t 58872484 ns/op\t 12.5 MB/s\t 26998116 B/op\t 3172 allocs/op",
		// No -benchmem: memory samples stay empty, ns still parses.
		"BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op",
	}
	got := parse(lines)
	off := got["BenchmarkDoTraceOff"]
	if len(off.ns) != 1 || len(off.bytes) != 1 || len(off.allocs) != 1 {
		t.Fatalf("off samples: %+v", off)
	}
	if off.bytes[0] != 26995724 || off.allocs[0] != 3159 {
		t.Fatalf("off mem = %g B/op, %g allocs/op", off.bytes[0], off.allocs[0])
	}
	on := got["BenchmarkDoTraceOn"]
	if len(on.allocs) != 1 || on.allocs[0] != 3172 {
		t.Fatalf("on samples: %+v", on)
	}
	plain := got["BenchmarkAdvanceParallel"]
	if len(plain.ns) != 1 || len(plain.bytes) != 0 || len(plain.allocs) != 0 {
		t.Fatalf("plain samples: %+v", plain)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("even median = %g", m)
	}
}

func TestNormalizeStripsSuffix(t *testing.T) {
	in := "BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op"
	if got := normalize(in); got != "BenchmarkAdvanceParallel \t 100\t 250000 ns/op" {
		t.Fatalf("normalize = %q", got)
	}
	plain := "BenchmarkAdvanceParallel \t 100\t 250000 ns/op"
	if got := normalize(plain); got != plain {
		t.Fatalf("normalize mangled suffix-free line: %q", got)
	}
}

func TestWriteBenchTextFiltersAndNormalizes(t *testing.T) {
	path := t.TempDir() + "/bench.txt"
	err := writeBenchText(path, []string{
		"goos: linux",
		"BenchmarkMultiQoIDo/workers=1-4 \t 10\t 1000000 ns/op",
		"PASS",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "BenchmarkMultiQoIDo/workers=1 \t 10\t 1000000 ns/op\n"
	if string(b) != want {
		t.Fatalf("wrote %q, want %q", b, want)
	}
}

func TestSpeedupExpr(t *testing.T) {
	m := speedupRe.FindStringSubmatch("BenchmarkAdvanceSequential/BenchmarkAdvanceParallel>=2.0")
	if m == nil || m[1] != "BenchmarkAdvanceSequential" || m[2] != "BenchmarkAdvanceParallel" || m[3] != "2.0" {
		t.Fatalf("speedup expr parse: %v", m)
	}
}

func TestMissingRequired(t *testing.T) {
	cur := map[string]*samples{
		"BenchmarkShardFetchSingle":   {ns: []float64{1}},
		"BenchmarkShardFetchCluster3": {ns: []float64{1}},
		"BenchmarkAdvanceParallel":    {ns: []float64{1}},
		"BenchmarkDoTraceOff":         {ns: []float64{1}, bytes: []float64{64}, allocs: []float64{2}},
	}
	missing, err := missingRequired(cur, "ShardFetch,Advance", false)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	missing, err = missingRequired(cur, "ShardFetch, ^BenchmarkMultiQoIDo$ ,Nope", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 || missing[0] != "^BenchmarkMultiQoIDo$" || missing[1] != "Nope" {
		t.Fatalf("missing = %v", missing)
	}
	if _, err := missingRequired(cur, "([", false); err == nil {
		t.Fatal("bad regexp accepted")
	}
	// Empty elements (stray commas) are ignored, not failed.
	if missing, err := missingRequired(cur, ",Advance,", false); err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	// needMem: only benchmarks with -benchmem columns satisfy a pattern.
	if missing, err := missingRequired(cur, "DoTraceOff", true); err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	missing, err = missingRequired(cur, "ShardFetchSingle", true)
	if err != nil || len(missing) != 1 {
		t.Fatalf("memless benchmark satisfied -require-mem: %v, err = %v", missing, err)
	}
}

// writeGateFiles lays down a current-run text file and a baseline JSON
// for run()-level tests; curNs/baseNs are the single-sample medians.
func writeGateFiles(t *testing.T, dir string, baseCPUs int, baseNs, curNs float64) (current, baseline string) {
	t.Helper()
	current = filepath.Join(dir, "bench.txt")
	cur := fmt.Sprintf("BenchmarkGateDemo-4 \t 10\t %.0f ns/op\nPASS\n", curNs)
	if err := os.WriteFile(current, []byte(cur), 0o600); err != nil {
		t.Fatal(err)
	}
	baseline = filepath.Join(dir, "baseline.json")
	base := Baseline{
		Note:      "test",
		Benchtime: "200ms",
		CPUs:      baseCPUs,
		Lines:     []string{fmt.Sprintf("BenchmarkGateDemo-8 \t 10\t %.0f ns/op", baseNs)},
	}
	blob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, blob, 0o600); err != nil {
		t.Fatal(err)
	}
	return current, baseline
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag: want error")
	}
	if err := run([]string{"-h"}, io.Discard); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "-current is required") {
		t.Fatalf("missing -current: %v", err)
	}
	if err := run([]string{"-current", filepath.Join(t.TempDir(), "nope.txt")}, &out); err == nil {
		t.Fatal("missing current file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("goos: linux\nPASS\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-current", empty}, &out); err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("no benchmark lines: %v", err)
	}
}

func TestRunRegressionGate(t *testing.T) {
	dir := t.TempDir()
	cur, base := writeGateFiles(t, dir, runtime.NumCPU(), 1000, 1050)
	// +5% is inside the default 10% threshold.
	var out strings.Builder
	if err := run([]string{"-current", cur, "-baseline", base, "-benchtime", "200ms"}, &out); err != nil {
		t.Fatalf("within threshold: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "GATE BenchmarkGateDemo") || !strings.Contains(out.String(), "ok") {
		t.Fatalf("gate output: %q", out.String())
	}

	// +50% on matching hardware is a hard failure with exit-code-1 marking.
	cur, base = writeGateFiles(t, dir, runtime.NumCPU(), 1000, 1500)
	out.Reset()
	err := run([]string{"-current", cur, "-baseline", base}, &out)
	if !errors.Is(err, errGateFailed) {
		t.Fatalf("regression: err = %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("gate output: %q", out.String())
	}

	// The same regression against a different CPU class is advisory.
	cur, base = writeGateFiles(t, dir, runtime.NumCPU()+1, 1000, 1500)
	out.Reset()
	if err := run([]string{"-current", cur, "-baseline", base}, &out); err != nil {
		t.Fatalf("advisory: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Fatalf("gate output: %q", out.String())
	}

	// Benchtime mismatch refuses to compare at all.
	cur, base = writeGateFiles(t, dir, runtime.NumCPU(), 1000, 1000)
	if err := run([]string{"-current", cur, "-baseline", base, "-benchtime", "1s"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "benchtime mismatch") {
		t.Fatalf("benchtime mismatch: %v", err)
	}
	// A -match that hits nothing in the baseline is a configuration error.
	if err := run([]string{"-current", cur, "-baseline", base, "-match", "Nope"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no baseline benchmark matched") {
		t.Fatalf("unmatched -match: %v", err)
	}
	if err := run([]string{"-current", cur, "-baseline", base, "-match", "(["}, io.Discard); err == nil {
		t.Fatal("bad -match regexp: want error")
	}
}

func TestRunRequireAndSpeedup(t *testing.T) {
	dir := t.TempDir()
	cur, _ := writeGateFiles(t, dir, 0, 0, 1000)
	var out strings.Builder
	err := run([]string{"-current", cur, "-require", "GateDemo,Vanished"}, &out)
	if !errors.Is(err, errGateFailed) || !strings.Contains(out.String(), "REQUIRE") {
		t.Fatalf("missing required benchmark: err=%v out=%q", err, out.String())
	}
	err = run([]string{"-current", cur, "-require-mem", "GateDemo"}, &out)
	if !errors.Is(err, errGateFailed) {
		t.Fatalf("memless benchmark satisfied -require-mem: %v", err)
	}

	two := filepath.Join(dir, "two.txt")
	lines := "BenchmarkSeq-4 \t 10\t 2000 ns/op\nBenchmarkPar-4 \t 10\t 1000 ns/op\n"
	if err := os.WriteFile(two, []byte(lines), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-current", two, "-speedup", "BenchmarkSeq/BenchmarkPar>=2.0"}, io.Discard); err != nil {
		t.Fatalf("speedup met: %v", err)
	}
	err = run([]string{"-current", two, "-speedup", "BenchmarkSeq/BenchmarkPar>=3.0"}, &out)
	if !errors.Is(err, errGateFailed) {
		t.Fatalf("speedup unmet: %v", err)
	}
	if err := run([]string{"-current", two, "-speedup", "garbage"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "bad -speedup") {
		t.Fatalf("bad -speedup: %v", err)
	}
	if err := run([]string{"-current", two, "-speedup", "BenchmarkSeq/BenchmarkGone>=2.0"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "needs both") {
		t.Fatalf("speedup with missing benchmark: %v", err)
	}
}

func TestRunSnapshotAndExports(t *testing.T) {
	dir := t.TempDir()
	cur, base := writeGateFiles(t, dir, runtime.NumCPU(), 1000, 1000)
	snap := filepath.Join(dir, "snap.json")
	expBase := filepath.Join(dir, "base.txt")
	expCur := filepath.Join(dir, "cur.txt")
	args := []string{
		"-current", cur, "-baseline", base,
		"-out", snap, "-export-baseline", expBase, "-export-current", expCur,
		"-benchtime", "200ms", "-count", "5", "-note", "snapshot test",
	}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Baseline
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Note != "snapshot test" || got.Benchtime != "200ms" || got.Count != 5 ||
		got.CPUs != runtime.NumCPU() || len(got.Lines) != 1 {
		t.Fatalf("snapshot: %+v", got)
	}
	for _, p := range []string{expBase, expCur} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Exports are normalized: the -N GOMAXPROCS suffix is stripped.
		if !strings.Contains(string(b), "BenchmarkGateDemo \t") {
			t.Fatalf("%s: %q", p, b)
		}
	}
}
