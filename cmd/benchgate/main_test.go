package main

import (
	"math"
	"os"
	"testing"
)

func TestParseNormalizesGomaxprocsSuffix(t *testing.T) {
	lines := []string{
		"BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op\t 17.44 MB/s",
		"BenchmarkAdvanceParallel-4 \t 100\t 260000 ns/op",
		"BenchmarkAdvanceParallel \t 100\t 240000 ns/op",
		"BenchmarkMultiQoIDo/workers=1-4 \t 10\t 1000000 ns/op",
		"goos: linux",
		"PASS",
	}
	got := parse(lines)
	if len(got["BenchmarkAdvanceParallel"].ns) != 3 {
		t.Fatalf("parallel samples: %v", got)
	}
	if len(got["BenchmarkMultiQoIDo/workers=1"].ns) != 1 {
		t.Fatalf("sub-benchmark samples: %v", got)
	}
}

func TestParseBenchmemColumns(t *testing.T) {
	lines := []string{
		// Plain -benchmem line.
		"BenchmarkDoTraceOff-4 \t 4\t 53538622 ns/op\t 26995724 B/op\t 3159 allocs/op",
		// Custom metric between ns/op and the memory columns.
		"BenchmarkDoTraceOn-4 \t 4\t 58872484 ns/op\t 12.5 MB/s\t 26998116 B/op\t 3172 allocs/op",
		// No -benchmem: memory samples stay empty, ns still parses.
		"BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op",
	}
	got := parse(lines)
	off := got["BenchmarkDoTraceOff"]
	if len(off.ns) != 1 || len(off.bytes) != 1 || len(off.allocs) != 1 {
		t.Fatalf("off samples: %+v", off)
	}
	if off.bytes[0] != 26995724 || off.allocs[0] != 3159 {
		t.Fatalf("off mem = %g B/op, %g allocs/op", off.bytes[0], off.allocs[0])
	}
	on := got["BenchmarkDoTraceOn"]
	if len(on.allocs) != 1 || on.allocs[0] != 3172 {
		t.Fatalf("on samples: %+v", on)
	}
	plain := got["BenchmarkAdvanceParallel"]
	if len(plain.ns) != 1 || len(plain.bytes) != 0 || len(plain.allocs) != 0 {
		t.Fatalf("plain samples: %+v", plain)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("even median = %g", m)
	}
}

func TestNormalizeStripsSuffix(t *testing.T) {
	in := "BenchmarkAdvanceParallel-4 \t 100\t 250000 ns/op"
	if got := normalize(in); got != "BenchmarkAdvanceParallel \t 100\t 250000 ns/op" {
		t.Fatalf("normalize = %q", got)
	}
	plain := "BenchmarkAdvanceParallel \t 100\t 250000 ns/op"
	if got := normalize(plain); got != plain {
		t.Fatalf("normalize mangled suffix-free line: %q", got)
	}
}

func TestWriteBenchTextFiltersAndNormalizes(t *testing.T) {
	path := t.TempDir() + "/bench.txt"
	err := writeBenchText(path, []string{
		"goos: linux",
		"BenchmarkMultiQoIDo/workers=1-4 \t 10\t 1000000 ns/op",
		"PASS",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "BenchmarkMultiQoIDo/workers=1 \t 10\t 1000000 ns/op\n"
	if string(b) != want {
		t.Fatalf("wrote %q, want %q", b, want)
	}
}

func TestSpeedupExpr(t *testing.T) {
	m := speedupRe.FindStringSubmatch("BenchmarkAdvanceSequential/BenchmarkAdvanceParallel>=2.0")
	if m == nil || m[1] != "BenchmarkAdvanceSequential" || m[2] != "BenchmarkAdvanceParallel" || m[3] != "2.0" {
		t.Fatalf("speedup expr parse: %v", m)
	}
}

func TestMissingRequired(t *testing.T) {
	cur := map[string]*samples{
		"BenchmarkShardFetchSingle":   {ns: []float64{1}},
		"BenchmarkShardFetchCluster3": {ns: []float64{1}},
		"BenchmarkAdvanceParallel":    {ns: []float64{1}},
		"BenchmarkDoTraceOff":         {ns: []float64{1}, bytes: []float64{64}, allocs: []float64{2}},
	}
	missing, err := missingRequired(cur, "ShardFetch,Advance", false)
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	missing, err = missingRequired(cur, "ShardFetch, ^BenchmarkMultiQoIDo$ ,Nope", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 || missing[0] != "^BenchmarkMultiQoIDo$" || missing[1] != "Nope" {
		t.Fatalf("missing = %v", missing)
	}
	if _, err := missingRequired(cur, "([", false); err == nil {
		t.Fatal("bad regexp accepted")
	}
	// Empty elements (stray commas) are ignored, not failed.
	if missing, err := missingRequired(cur, ",Advance,", false); err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	// needMem: only benchmarks with -benchmem columns satisfy a pattern.
	if missing, err := missingRequired(cur, "DoTraceOff", true); err != nil || len(missing) != 0 {
		t.Fatalf("missing = %v, err = %v", missing, err)
	}
	missing, err = missingRequired(cur, "ShardFetchSingle", true)
	if err != nil || len(missing) != 1 {
		t.Fatalf("memless benchmark satisfied -require-mem: %v, err = %v", missing, err)
	}
}
