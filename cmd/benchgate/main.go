// Command benchgate is the CI benchmark-regression gate. It parses Go
// benchmark output, compares the median ns/op — and, when the runs carry
// -benchmem columns, the median B/op and allocs/op — of each benchmark
// against a committed JSON baseline, and exits non-zero when any gated
// benchmark regressed past the threshold — or when a required parallel
// speedup is not met, or when a -require'd benchmark is missing from the
// current run, or when a -require-mem'd benchmark lacks memory columns.
// It also converts between the JSON baseline format and the raw text
// benchstat consumes, so the CI job can render a human-readable benchstat
// table next to the machine-checked gate.
//
// Usage:
//
//	benchgate -current bench.txt -baseline BENCH_pr4_baseline.json \
//	          -threshold 0.10 -match 'Advance|Do|ShardFetch' -out BENCH_pr.json \
//	          -require 'ShardFetchSingle,ShardFetchCluster3' \
//	          -require-mem 'DoTrace(Off|On)' \
//	          -export-baseline bench_baseline.txt
//	benchgate -current bench.txt -speedup 'BenchmarkAdvanceSequential/BenchmarkAdvanceParallel>=2.0'
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark snapshot: raw `go test -bench` output
// lines plus provenance, so benchstat and the gate read the same numbers.
type Baseline struct {
	// Note documents where the snapshot came from and when to refresh it.
	Note string `json:"note"`
	// Go is the toolchain that produced the lines.
	Go string `json:"go"`
	// Benchtime and Count echo the flags the lines were produced with; the
	// gate refuses to compare snapshots taken with different benchtime.
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// CPUs is runtime.NumCPU() of the machine that produced the lines.
	// When it differs from the gating machine the regression check is
	// advisory only (printed, not failed): absolute ns/op medians from
	// different hardware classes are not comparable — refresh the baseline
	// on the target runner class (bench-baseline CI job) to arm the gate.
	CPUs int `json:"cpus"`
	// Lines are the raw benchmark result lines (only lines starting with
	// "Benchmark" matter).
	Lines []string `json:"lines"`
}

// benchLine matches `BenchmarkName-8   123   4567 ns/op ...`, optionally
// followed (possibly after custom metrics like MB/s) by the -benchmem
// columns `B/op` and `allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9]+) allocs/op)?`)

// nameSuffix matches the -N GOMAXPROCS suffix Go appends to benchmark
// names; exports strip it so benchstat aligns runs from machines with
// different core counts.
var nameSuffix = regexp.MustCompile(`^(Benchmark\S+?)-\d+(\s)`)

func normalize(line string) string {
	return nameSuffix.ReplaceAllString(strings.TrimSpace(line), "$1$2")
}

// writeBenchText writes benchmark lines (normalized) for benchstat.
func writeBenchText(path string, lines []string) error {
	var out []string
	for _, ln := range lines {
		if benchLine.MatchString(strings.TrimSpace(ln)) {
			out = append(out, normalize(ln))
		}
	}
	return os.WriteFile(path, []byte(strings.Join(out, "\n")+"\n"), 0o644)
}

// samples holds one benchmark's measurements across -count repetitions;
// bytes and allocs stay empty when the run lacked -benchmem.
type samples struct {
	ns, bytes, allocs []float64
}

// parse collects per-benchmark ns/op (and, with -benchmem, B/op and
// allocs/op) samples, normalizing away the -N GOMAXPROCS suffix so runs
// from machines with different core counts compare by name.
func parse(lines []string) map[string]*samples {
	out := map[string]*samples{}
	for _, ln := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(ln))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, v)
		if m[3] != "" && m[4] != "" {
			bv, err1 := strconv.ParseFloat(m[3], 64)
			av, err2 := strconv.ParseFloat(m[4], 64)
			if err1 == nil && err2 == nil {
				s.bytes = append(s.bytes, bv)
				s.allocs = append(s.allocs, av)
			}
		}
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readLines(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return strings.Split(string(b), "\n"), nil
}

var speedupRe = regexp.MustCompile(`^(Benchmark\S+)/(Benchmark\S+)>=([0-9.]+)$`)

// missingRequired checks a comma-separated list of regexps against the
// current benchmark names and returns the patterns matching none of them.
// With needMem, a benchmark only satisfies a pattern when its lines carry
// -benchmem columns. CI uses it to fail loudly when a gated benchmark
// silently stops running (renamed, moved packages, filtered out by the
// bench pattern) or silently loses its memory measurements — the
// regression gate would otherwise just skip it forever.
func missingRequired(cur map[string]*samples, spec string, needMem bool) ([]string, error) {
	var missing []string
	for _, pat := range strings.Split(spec, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad -require pattern %q: %w", pat, err)
		}
		found := false
		for name, s := range cur {
			if re.MatchString(name) && (!needMem || len(s.allocs) > 0) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, pat)
		}
	}
	return missing, nil
}

// errGateFailed marks a measured regression (or missing requirement) as
// opposed to a usage/IO error; main maps it to exit code 1, everything
// else to 2 — the contract the CI job scripts rely on.
var errGateFailed = errors.New("benchmark gate failed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		if errors.Is(err, errGateFailed) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		current    = fs.String("current", "", "current benchmark output (text)")
		baseline   = fs.String("baseline", "", "committed baseline (JSON)")
		threshold  = fs.Float64("threshold", 0.10, "max allowed median ns/op regression (fraction)")
		match      = fs.String("match", ".", "regexp of benchmark names the regression gate checks")
		out        = fs.String("out", "", "write the current results as a JSON snapshot (artifact / next baseline)")
		exportBase = fs.String("export-baseline", "", "write the baseline's lines, name-normalized, to this file (for benchstat)")
		exportCur  = fs.String("export-current", "", "write the current lines, name-normalized, to this file (for benchstat)")
		speedup    = fs.String("speedup", "", "required ratio, e.g. 'BenchmarkA/BenchmarkB>=2.0' (median A / median B)")
		require    = fs.String("require", "", "comma-separated regexps; each must match at least one current benchmark")
		requireMem = fs.String("require-mem", "", "comma-separated regexps; each must match a current benchmark carrying -benchmem columns")
		benchtime  = fs.String("benchtime", "", "benchtime the current run used (recorded in -out, checked vs baseline)")
		countFlag  = fs.Int("count", 0, "count the current run used (recorded in -out)")
		noteFlag   = fs.String("note", "", "provenance note recorded in -out")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *current == "" {
		return errors.New("-current is required")
	}
	curLines, err := readLines(*current)
	if err != nil {
		return err
	}
	cur := parse(curLines)
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark lines in %s", *current)
	}

	failed := false

	if *require != "" {
		missing, err := missingRequired(cur, *require, false)
		if err != nil {
			return err
		}
		for _, pat := range missing {
			fmt.Fprintf(stdout, "REQUIRE %-52s no current benchmark matches\n", pat)
			failed = true
		}
	}
	if *requireMem != "" {
		missing, err := missingRequired(cur, *requireMem, true)
		if err != nil {
			return err
		}
		for _, pat := range missing {
			fmt.Fprintf(stdout, "REQUIRE-MEM %-48s no current benchmark with -benchmem columns matches\n", pat)
			failed = true
		}
	}

	if *exportCur != "" {
		if err := writeBenchText(*exportCur, curLines); err != nil {
			return err
		}
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse %s: %w", *baseline, err)
		}
		if *benchtime != "" && base.Benchtime != "" && base.Benchtime != *benchtime {
			return fmt.Errorf("benchtime mismatch: baseline %q vs current %q", base.Benchtime, *benchtime)
		}
		if *exportBase != "" {
			if err := writeBenchText(*exportBase, base.Lines); err != nil {
				return err
			}
		}
		advisory := base.CPUs != 0 && base.CPUs != runtime.NumCPU()
		if advisory {
			fmt.Fprintf(stdout, "NOTE baseline recorded on %d-CPU hardware, gating machine has %d: regression check is advisory only.\n"+
				"     Refresh the baseline on this runner class (bench-baseline job) to arm the gate.\n",
				base.CPUs, runtime.NumCPU())
		}
		gate, err := regexp.Compile(*match)
		if err != nil {
			return fmt.Errorf("bad -match pattern: %w", err)
		}
		baseRes := parse(base.Lines)
		var names []string
		for name := range baseRes {
			names = append(names, name)
		}
		sort.Strings(names)
		checked := 0
		for _, name := range names {
			if !gate.MatchString(name) {
				continue
			}
			s, ok := cur[name]
			if !ok {
				fmt.Fprintf(stdout, "GATE %-55s missing from current run\n", name)
				failed = true
				continue
			}
			checked++
			// ns/op, then — when both runs carried -benchmem — B/op and
			// allocs/op under the same threshold and advisory rule.
			checks := []struct {
				unit      string
				base, cur []float64
			}{
				{"ns/op", baseRes[name].ns, s.ns},
				{"B/op", baseRes[name].bytes, s.bytes},
				{"allocs/op", baseRes[name].allocs, s.allocs},
			}
			for _, ck := range checks {
				if len(ck.base) == 0 || len(ck.cur) == 0 {
					continue
				}
				b, c := median(ck.base), median(ck.cur)
				var delta float64
				switch {
				case b > 0:
					delta = (c - b) / b
				case c > 0:
					delta = 1 // from zero to anything is a full regression
				}
				verdict := "ok"
				if delta > *threshold {
					if advisory {
						verdict = fmt.Sprintf("worse than cross-hardware baseline (advisory, > %+.0f%%)", *threshold*100)
					} else {
						verdict = fmt.Sprintf("REGRESSION (> %+.0f%%)", *threshold*100)
						failed = true
					}
				}
				fmt.Fprintf(stdout, "GATE %-55s %12.0f -> %12.0f %-9s  %+6.1f%%  %s\n", name, b, c, ck.unit, delta*100, verdict)
			}
		}
		if checked == 0 {
			return fmt.Errorf("no baseline benchmark matched %q", *match)
		}
	}

	if *speedup != "" {
		m := speedupRe.FindStringSubmatch(*speedup)
		if m == nil {
			return fmt.Errorf("bad -speedup %q (want 'BenchmarkA/BenchmarkB>=2.0')", *speedup)
		}
		num, den := cur[m[1]], cur[m[2]]
		want, _ := strconv.ParseFloat(m[3], 64)
		if num == nil || den == nil || len(num.ns) == 0 || len(den.ns) == 0 {
			return fmt.Errorf("-speedup needs both %s and %s in the current run", m[1], m[2])
		}
		got := median(num.ns) / median(den.ns)
		verdict := "ok"
		if got < want {
			verdict = "TOO SLOW"
			failed = true
		}
		fmt.Fprintf(stdout, "SPEEDUP %s/%s = %.2fx (want >= %.2fx, %d cores)  %s\n",
			m[1], m[2], got, want, runtime.NumCPU(), verdict)
	}

	if *out != "" {
		snap := Baseline{
			Note:      *noteFlag,
			Go:        runtime.Version(),
			Benchtime: *benchtime,
			Count:     *countFlag,
			CPUs:      runtime.NumCPU(),
		}
		for _, ln := range curLines {
			if benchLine.MatchString(strings.TrimSpace(ln)) {
				snap.Lines = append(snap.Lines, strings.TrimSpace(ln))
			}
		}
		blob, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if failed {
		return errGateFailed
	}
	return nil
}
