package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Formats":                                    "formats",
		"Data flow: pack (producer side)":            "data-flow-pack-producer-side",
		"Where `Workers` bounds each pool":           "where-workers-bounds-each-pool",
		"At-rest: the archive container (`PQARCH1`)": "at-rest-the-archive-container-pqarch1",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnchorsDeduplicate(t *testing.T) {
	a := anchors("# Foo\n## Foo\n### Bar\n")
	for _, want := range []string{"foo", "foo-1", "bar"} {
		if !a[want] {
			t.Errorf("anchor %q missing from %v", want, a)
		}
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.md", "# Top\nsee [b](b.md) and [sec](b.md#deep-dive) and [self](#top)\n"+
		"```\n[not a link check](nonexistent.md)\n```\n"+
		"[ext](https://example.com/x) stays unchecked\n")
	write(t, root, "b.md", "# B\n## Deep dive\n")
	if probs := run(root, "pkgx", true, nil, []string{"a.md", "b.md"}); len(probs) != 0 {
		t.Fatalf("clean docs flagged: %v", probs)
	}

	write(t, root, "bad.md", "[gone](missing.md) [noanchor](b.md#nope) [selfmiss](#nah)\n")
	probs := run(root, "pkgx", true, nil, []string{"bad.md"})
	if len(probs) != 3 {
		t.Fatalf("want 3 problems, got %v", probs)
	}
	for i, want := range []string{"missing.md", "#nope", "#nah"} {
		if !strings.Contains(probs[i], strings.TrimPrefix(want, "#")) {
			t.Errorf("problem %d = %q, want mention of %q", i, probs[i], want)
		}
	}
}

// TestSymbolProbe runs the real `go doc` gate against this module: a doc
// naming a live symbol passes, one naming a phantom fails, and -ignore
// exempts documented-as-removed API.
func TestSymbolProbe(t *testing.T) {
	if _, err := os.Stat("../../go.mod"); err != nil {
		t.Skip("module root not found")
	}
	root := t.TempDir()
	write(t, root, "ok.md", "Use `progqoi.Refactor` with `progqoi.WithRefactorWorkers`.\n")
	if probs := run("../..", "progqoi", false, nil, []string{}); len(probs) != 0 {
		t.Fatalf("no files: %v", probs)
	}
	// Files resolve against -dir, so copy into the module root is not an
	// option; instead point -dir at the module and use relative paths via
	// a doc dropped there temporarily? No — probe symbols from a doc in
	// a temp dir by running collect+probe directly.
	syms := map[string]bool{}
	collectSymbols("progqoi", "call progqoi.Refactor then progqoi.NoSuchThing", syms)
	if !syms["progqoi.Refactor"] || !syms["progqoi.NoSuchThing"] || len(syms) != 2 {
		t.Fatalf("collected %v", syms)
	}
	if err := probeSymbol("../..", "progqoi.Refactor"); err != nil {
		t.Fatalf("live symbol flagged: %v", err)
	}
	if err := probeSymbol("../..", "progqoi.NoSuchThing"); err == nil {
		t.Fatal("phantom symbol passed the probe")
	}
}
