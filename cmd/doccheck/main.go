// Command doccheck is the CI documentation gate: it keeps the markdown
// doc suite (README, ARCHITECTURE, FORMATS, CHANGES, ...) true as the
// code moves. Two checks:
//
//   - Links: every relative markdown link must resolve to an existing
//     file, and every fragment (#anchor, same-file or cross-file) must
//     match a heading in its target, using GitHub's slug rules. External
//     schemes (http:, https:, mailto:) are skipped — the gate runs
//     offline.
//
//   - Symbols: every exported symbol the docs name as `progqoi.Xxx` is
//     probed with `go doc`; a symbol that no longer exists fails the
//     gate, so renaming or deleting public API without updating the docs
//     is caught on the spot. -ignore exempts symbols that are documented
//     deliberately as removed (e.g. in a migration guide).
//
// Usage:
//
//	doccheck [-dir REPO] [-pkg progqoi] [-nosymbols] \
//	         [-ignore progqoi.Old,progqoi.Older] FILE.md ...
//
// Exit status 0 when every check passes; 1 with one line per finding
// otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links/images [text](target). Reference
// links are rare in this repo and out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// symbolRe matches exported package symbols the docs name, e.g.
// progqoi.Refactor. The package prefix is substituted from -pkg.
func symbolRe(pkg string) *regexp.Regexp {
	return regexp.MustCompile(regexp.QuoteMeta(pkg) + `\.([A-Z][A-Za-z0-9_]*)`)
}

// slug converts a heading to its GitHub anchor: lowercase, spaces to
// hyphens, everything outside [a-z0-9-_] dropped.
func slug(heading string) string {
	// Inline code and formatting markers contribute their text only.
	h := strings.NewReplacer("`", "", "*", "").Replace(heading)
	h = strings.ToLower(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors of a markdown document,
// de-duplicated the way GitHub does (second "Foo" becomes foo-1).
func anchors(md string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]int{}
	for _, m := range headingRe.FindAllStringSubmatch(md, -1) {
		s := slug(m[1])
		if n := seen[s]; n > 0 {
			out[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			out[s] = true
		}
		seen[s]++
	}
	return out
}

// stripCodeFences removes fenced code blocks so link checking does not
// trip over pseudo-links in code samples; symbol scanning runs on the
// full text (code samples name real API deliberately).
func stripCodeFences(md string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if !fenced {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// checkLinks validates every relative link of file (path relative to
// root), returning one message per broken link.
func checkLinks(root, file, md string) []string {
	var probs []string
	for _, m := range linkRe.FindAllStringSubmatch(stripCodeFences(md), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		path, frag, _ := strings.Cut(target, "#")
		var targetFile string
		if path == "" {
			targetFile = file // same-document anchor
		} else {
			targetFile = filepath.Join(filepath.Dir(file), path)
			if _, err := os.Stat(filepath.Join(root, targetFile)); err != nil {
				probs = append(probs, fmt.Sprintf("%s: broken link %q (no such file)", file, target))
				continue
			}
		}
		if frag == "" {
			continue
		}
		tmd, err := os.ReadFile(filepath.Join(root, targetFile))
		if err != nil {
			probs = append(probs, fmt.Sprintf("%s: link %q: %v", file, target, err))
			continue
		}
		if !anchors(string(tmd))[frag] {
			probs = append(probs, fmt.Sprintf("%s: link %q: no heading with anchor %q in %s", file, target, frag, targetFile))
		}
	}
	return probs
}

// collectSymbols gathers the unique pkg.Symbol names a document mentions.
func collectSymbols(pkg, md string, into map[string]bool) {
	for _, m := range symbolRe(pkg).FindAllStringSubmatch(md, -1) {
		into[pkg+"."+m[1]] = true
	}
}

// probeSymbol asks `go doc` (run inside root) whether sym still exists.
func probeSymbol(root, sym string) error {
	cmd := exec.Command("go", "doc", sym)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go doc %s: %s", sym, strings.TrimSpace(string(out)))
	}
	return nil
}

func run(root, pkg string, noSymbols bool, ignore map[string]bool, files []string) []string {
	var probs []string
	syms := map[string]bool{}
	for _, f := range files {
		md, err := os.ReadFile(filepath.Join(root, f))
		if err != nil {
			probs = append(probs, err.Error())
			continue
		}
		probs = append(probs, checkLinks(root, f, string(md))...)
		if !noSymbols {
			collectSymbols(pkg, string(md), syms)
		}
	}
	names := make([]string, 0, len(syms))
	for s := range syms {
		if !ignore[s] {
			names = append(names, s)
		}
	}
	sort.Strings(names)
	for _, s := range names {
		if err := probeSymbol(root, s); err != nil {
			probs = append(probs, fmt.Sprintf("stale symbol: %v", err))
		}
	}
	return probs
}

func main() {
	dir := flag.String("dir", ".", "repository root (module context for go doc; files resolve against it)")
	pkg := flag.String("pkg", "progqoi", "package prefix whose symbols the docs are checked against")
	noSymbols := flag.Bool("nosymbols", false, "skip the go doc symbol probe")
	ignoreList := flag.String("ignore", "", "comma-separated symbols exempt from the probe (documented-as-removed API)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-dir REPO] [-pkg PKG] [-nosymbols] [-ignore SYMS] FILE.md ...")
		os.Exit(2)
	}
	ignore := map[string]bool{}
	for _, s := range strings.Split(*ignoreList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			ignore[s] = true
		}
	}
	probs := run(*dir, *pkg, *noSymbols, ignore, flag.Args())
	for _, p := range probs {
		fmt.Fprintln(os.Stderr, "doccheck:", p)
	}
	if len(probs) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(probs))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) clean\n", flag.NArg())
}
