package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the vettool into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "progqoivet")
	out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building progqoivet: %v\n%s", err, out)
	}
	return tool
}

// vet runs `go vet -vettool=tool ./...` inside dir.
func vet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettool drives the built binary through the real go vet protocol
// against a known-bad module (must fail, naming both violations) and a
// conforming one (must exit clean).
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and shells out to go vet")
	}
	tool := buildTool(t)

	out, err := vet(t, tool, filepath.Join("testdata", "badmod"))
	if err == nil {
		t.Fatalf("go vet over badmod: want non-zero exit, got success\n%s", out)
	}
	for _, want := range []string{
		"flag.ContinueOnError", // flagmode on the ExitOnError regression
		"detaches this code",   // ctxflow on the fresh root context
		"lib.go",               // diagnostics carry positions
	} {
		if !strings.Contains(out, want) {
			t.Errorf("badmod vet output missing %q:\n%s", want, out)
		}
	}

	out, err = vet(t, tool, filepath.Join("testdata", "cleanmod"))
	if err != nil {
		t.Errorf("go vet over cleanmod: want clean exit, got %v\n%s", err, out)
	}
}
