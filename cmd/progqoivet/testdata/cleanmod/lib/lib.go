// Package lib conforms to every progqoivet invariant; the CLI test
// asserts the vettool exits zero over it.
package lib

import (
	"context"
	"flag"
)

// Default uses the blessed nil-context defaulting shape.
func Default(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// NewFlags uses the mandated error handling mode.
func NewFlags() *flag.FlagSet {
	return flag.NewFlagSet("good", flag.ContinueOnError)
}
