// Package lib deliberately violates two progqoivet invariants — a fresh
// root context in library code and a flag.ExitOnError flag set — so the
// CLI test can assert the diagnostics surface through go vet -vettool
// and fail the build.
package lib

import (
	"context"
	"flag"
)

// Fresh detaches from the caller's cancellation: ctxflow must flag it.
func Fresh() context.Context {
	return context.Background()
}

// NewFlags reproduces the PR 4/PR 5 ExitOnError regression: flagmode
// must flag it.
func NewFlags() *flag.FlagSet {
	return flag.NewFlagSet("bad", flag.ExitOnError)
}
