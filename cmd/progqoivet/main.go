// Command progqoivet is the repository's custom static-analysis suite:
// a go/analysis vettool whose analyzers machine-enforce invariants that
// were previously defended only by prose, tests, and code review.
//
// Run it through go vet:
//
//	go build -o progqoivet ./cmd/progqoivet
//	go vet -vettool=$PWD/progqoivet ./...
//
// Analyzers (each package's doc comment states the full invariant and
// the PR that motivated it):
//
//	lockguard    "guarded by <mu>" fields accessed only under their mutex (PR 4 /healthz race)
//	traceguard   allocating obs span calls sit behind a nil-Trace guard (PR 6 zero-alloc contract)
//	ctxflow      contexts flow end to end; no fresh roots below main (PR 2 context contract)
//	errwrapcheck sentinels matched with errors.Is and wrapped with %w (PR 2 ErrBadRequest contract)
//	flagmode     flag.NewFlagSet always uses ContinueOnError (the twice-fixed PR 4/5 bug)
//	slogonly     the serving path logs through log/slog only (PR 6 structured logging)
//	tokencmp     bearer tokens compared only via server.TokenEqual (PR 9 token audit)
//
// A finding can be suppressed — with a mandatory reason — by the
// directive described in internal/analysis/analysisutil:
//
//	//progqoivet:allow <analyzer> -- <reason>
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"progqoi/internal/analysis/ctxflow"
	"progqoi/internal/analysis/errwrapcheck"
	"progqoi/internal/analysis/flagmode"
	"progqoi/internal/analysis/lockguard"
	"progqoi/internal/analysis/slogonly"
	"progqoi/internal/analysis/tokencmp"
	"progqoi/internal/analysis/traceguard"
)

func main() {
	unitchecker.Main(
		lockguard.Analyzer,
		traceguard.Analyzer,
		ctxflow.Analyzer,
		errwrapcheck.Analyzer,
		flagmode.Analyzer,
		slogonly.Analyzer,
		tokencmp.Analyzer,
	)
}
