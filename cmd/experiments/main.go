// Command experiments regenerates the paper's evaluation tables and figures
// on the synthetic stand-in datasets and prints the same rows/series the
// paper reports.
//
// Usage:
//
//	experiments -exp all            # everything (minutes)
//	experiments -exp fig7 -quick    # one experiment at benchmark scale
//
// Experiments: table3, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table4,
// fig9, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"progqoi/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table3 fig2..fig9 table4 all")
	quick := flag.Bool("quick", false, "benchmark-scale datasets and sweeps")
	flag.Parse()

	ctx := context.Background()
	o := experiments.Opts{Quick: *quick}
	runners := map[string]func(context.Context, experiments.Opts) string{
		"table3": experiments.Table3,
		"fig2":   experiments.Fig2,
		"fig3":   experiments.Fig3,
		"fig4":   experiments.Fig4,
		"fig5":   experiments.Fig5,
		"fig6":   experiments.Fig6,
		"fig7":   experiments.Fig7,
		"fig8":   experiments.Fig8,
		"table4": experiments.Table4,
		"fig9":   experiments.Fig9,
		"all":    experiments.All,
	}
	fn, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	fmt.Println(fn(ctx, o))
	fmt.Printf("\n[%s completed in %.1f s]\n", *exp, time.Since(start).Seconds())
}
