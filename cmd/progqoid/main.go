// Command progqoid is the fragment service daemon: it serves the archives
// of a storage directory (written by storage.WriteArchive, e.g. via
// `progqoi pack`) over HTTP so remote sessions can retrieve QoIs with
// exactly the bytes each tolerance needs.
//
//	progqoid -dir ./archives -addr :9123
//
// Routes, formats and caching behaviour are documented in
// progqoi/internal/server. Stop with SIGINT/SIGTERM; in-flight requests
// drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progqoid:", err)
		os.Exit(1)
	}
}

// newServer builds the HTTP handler for one archive directory; split from
// run so tests can drive it without a listener.
func newServer(dir string, limit int, logRequests bool) (*server.Server, error) {
	st, err := storage.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return server.New(st, server.Options{MaxInflight: limit, LogRequests: logRequests})
}

func run(args []string) error {
	fs := flag.NewFlagSet("progqoid", flag.ExitOnError)
	addr := fs.String("addr", ":9123", "listen address")
	dir := fs.String("dir", "", "archive directory to serve (required)")
	limit := fs.Int("limit", server.DefaultMaxInflight, "max concurrent requests")
	verbose := fs.Bool("v", false, "log every request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	srv, err := newServer(*dir, *limit, *verbose)
	if err != nil {
		return err
	}
	names := srv.Datasets()
	if len(names) == 0 {
		log.Printf("progqoid: warning: no datasets (no *.manifest keys) under %s", *dir)
	}
	log.Printf("progqoid: serving %d dataset(s) %v from %s on %s (limit %d)",
		len(names), names, *dir, *addr, *limit)

	// ReadHeaderTimeout keeps a slow-loris peer from pinning a connection
	// forever; fragment bodies themselves are never read by the server.
	hs := &http.Server{Addr: *addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("progqoid: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}
