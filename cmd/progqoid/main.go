// Command progqoid is the fragment service daemon: it serves the archives
// of a storage backend (written by storage.WriteArchive, e.g. via
// `progqoi pack`) over HTTP so remote sessions can retrieve QoIs with
// exactly the bytes each tolerance needs.
//
//	progqoid -store ./archives -addr :9123
//
// The store reference is scheme-dispatched: a directory path (or
// file://dir) serves local archive files, while an S3-compatible bucket
// makes the daemon a stateless serving tier — zero archive bytes on local
// disk, fragments fetched from the bucket with authenticated ranged GETs
// through a byte-bounded read-through cache:
//
//	export PROGQOI_S3_ACCESS_KEY=... PROGQOI_S3_SECRET_KEY=...
//	progqoid -store s3://bucket/prefix \
//	    -store-endpoint http://minio:9000 -addr :9123
//
// Credentials travel only through the PROGQOI_S3_* environment, never
// argv. A malformed store URL, missing bucket, denied access or
// unreachable endpoint fails startup with a clean diagnostic before the
// listener binds. -dir remains as a legacy alias for -store DIR.
//
// A static cluster is several progqoid nodes serving the same store;
// each node is told the full topology so clients can discover it from
// any member:
//
//	progqoid -store ./archives -addr :9123 \
//	    -advertise http://node0:9123 \
//	    -peers http://node1:9123,http://node2:9123
//
// Sharding, replication and failover are client-side concerns (see
// progqoi.WithEndpoints); the daemon only reports the topology at
// /v1/cluster and serves its share of the traffic. -cache bounds the
// in-memory hot-fragment cache in front of the directory; /metrics
// exposes serving counters in Prometheus text format.
//
// An *elastic* cluster manages membership dynamically instead: a node
// boots with -join pointing at any live member (or -heartbeat alone to
// seed a new cluster) and announces itself, heartbeats carry the full
// membership table between nodes, silent members are marked suspect and
// eventually removed, and clients following the cluster with
// progqoi.WithTopologyRefresh re-route mid-session:
//
//	progqoid -store ./archives -addr :9124 \
//	    -advertise http://node1:9124 -join http://node0:9123
//
// POST /v1/cluster/drain (admin bearer token, like reload) retires a
// node gracefully: it stops accepting new sessions (503 on index/meta),
// finishes in-flight fragment work, and deregisters from its peers. On
// SIGINT/SIGTERM an elastic node leaves the cluster before the listener
// closes. See ARCHITECTURE.md "Elastic cluster".
//
// -admin TOKEN enables zero-downtime dataset publishing: pack a new
// dataset into the served directory (variable blobs land first, the
// manifest last, so a torn pack is invisible) and trigger
//
//	curl -X POST -H "Authorization: Bearer TOKEN" \
//	    http://node:9123/v1/datasets/reload
//
// to re-scan the directory and atomically swap the serving catalog;
// sessions already retrieving keep working throughout.
//
// -tenants CONFIG.json turns on multi-tenant serving: every data-plane
// request must carry a tenant bearer token, and each tenant gets its own
// rate limit, in-flight cap and priority class ("interactive" requests
// are admitted ahead of "bulk" whenever serving slots are contended).
// Over-limit requests get 429 + Retry-After; a full admission queue
// sheds with 503. Like the S3 credentials, tokens live in a file, never
// argv. -max-queue bounds the admission queue (waiting requests per
// serving slot). See ARCHITECTURE.md "Multi-tenant serving & QoS".
//
// Routes, formats and caching behaviour are documented in
// progqoi/internal/server and in FORMATS.md at the repository root. Stop
// with SIGINT/SIGTERM; in-flight requests drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"progqoi/internal/server"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progqoid:", err)
		os.Exit(1)
	}
}

// parsePeers validates a comma-separated list of absolute http(s) base
// URLs; empty elements are rejected so a stray comma fails loudly.
func parsePeers(list string) ([]string, error) {
	if list == "" {
		return nil, nil
	}
	var out []string
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("peer %q is not an absolute http(s) URL", p)
		}
		out = append(out, strings.TrimRight(p, "/"))
	}
	return out, nil
}

// newLogger builds the process logger from the -log-format and -log-level
// flags; records go to stderr so stdout stays free for tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q (want text or json)", format)
	}
}

// resolveDaemonStore maps a -store reference (or legacy -dir path) onto a
// live storage.Store: s3://bucket[/prefix], file://dir, or a bare
// directory path. The object-store endpoint and region come from the
// flags when set, the PROGQOI_S3_* environment otherwise; credentials are
// environment-only — secrets on a command line leak through process
// listings. Malformed references fail with errors wrapping
// objstore.ErrBadStoreURL before any listener binds.
func resolveDaemonStore(ref, endpoint, region string) (storage.Store, error) {
	opt := objstore.EnvOptions()
	if endpoint != "" {
		opt.Endpoint = endpoint
	}
	if region != "" {
		opt.Region = region
	}
	return objstore.ResolveStore(ref, opt)
}

// newServer builds the HTTP handler for one archive store reference;
// split from run so tests can drive it without a listener.
func newServer(ctx context.Context, ref string, limit int, logRequests bool) (*server.Server, error) {
	return newClusterServer(ctx, ref, limit, 0, "", nil, "", logRequests, nil)
}

// newClusterServer resolves the store reference and builds the service —
// the catalog scan inside server.New is also the startup probe: an
// unreachable or denying object store surfaces here as a clean startup
// error instead of a half-alive daemon.
func newClusterServer(ctx context.Context, ref string, limit int, cacheBytes int64, advertise string, peers []string, adminToken string, logRequests bool, lg *slog.Logger) (*server.Server, error) {
	st, err := resolveDaemonStore(ref, "", "")
	if err != nil {
		return nil, err
	}
	return server.New(ctx, st, server.Options{
		MaxInflight:   limit,
		HotCacheBytes: cacheBytes,
		Advertise:     advertise,
		Peers:         peers,
		AdminToken:    adminToken,
		LogRequests:   logRequests,
		Log:           lg,
	})
}

// withPprof mounts net/http/pprof under /debug/pprof/ behind the admin
// bearer token; every other path falls through to next. Profiles expose
// heap contents and symbol names, so they get the same gate as hot
// publishing rather than a public route.
func withPprof(next http.Handler, token string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || !server.TokenEqual(got, token) {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("progqoid", flag.ContinueOnError)
	addr := fs.String("addr", ":9123", "listen address")
	dir := fs.String("dir", "", "archive directory to serve (legacy alias for -store DIR)")
	store := fs.String("store", "", "archive store to serve: s3://bucket[/prefix], file://dir, or a directory path")
	storeEndpoint := fs.String("store-endpoint", "", "object-store base URL for s3:// stores (overrides "+objstore.EnvEndpoint+"); credentials come from "+objstore.EnvAccessKey+"/"+objstore.EnvSecretKey)
	storeRegion := fs.String("store-region", "", "object-store signing region for s3:// stores (overrides "+objstore.EnvRegion+")")
	limit := fs.Int("limit", server.DefaultMaxInflight, "max concurrent requests")
	cache := fs.Int64("cache", server.DefaultHotCacheBytes, "hot-fragment cache bound in bytes (negative disables)")
	advertise := fs.String("advertise", "", "this node's public base URL, reported at /v1/cluster")
	peers := fs.String("peers", "", "comma-separated base URLs of the other cluster nodes, reported at /v1/cluster")
	join := fs.String("join", "", "comma-separated seed base URLs of an elastic cluster to join on boot (requires -advertise; enables heartbeating)")
	heartbeat := fs.Duration("heartbeat", 0, "membership heartbeat interval (0 with -join defaults to "+server.DefaultHeartbeatInterval.String()+"; >0 without -join starts a joinable seed node)")
	suspectAfter := fs.Duration("suspect-after", 0, "silence after which a member is marked suspect and unrouted (default "+fmt.Sprint(server.DefaultSuspectMultiple)+"x heartbeat)")
	removeAfter := fs.Duration("remove-after", 0, "silence after which a suspect member is removed from the cluster (default "+fmt.Sprint(server.DefaultRemoveMultiple)+"x heartbeat)")
	admin := fs.String("admin", "", "admin token enabling hot publish via POST /v1/datasets/reload (empty disables)")
	tenantsPath := fs.String("tenants", "", "JSON tenant config enabling multi-tenant auth + QoS (empty serves anonymously); see ARCHITECTURE.md")
	maxQueue := fs.Int("max-queue", 0, "admission queue bound in waiting requests per serving slot (0 = default "+fmt.Sprint(server.DefaultMaxQueue)+", negative disables queueing)")
	verbose := fs.Bool("v", false, "log every request")
	logFormat := fs.String("log-format", "text", "log record format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ behind the -admin bearer token")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h printed usage; that is success, not a startup failure.
			return nil
		}
		return err
	}
	storeRef := *store
	switch {
	case *dir != "" && *store != "":
		return fmt.Errorf("-dir and -store are mutually exclusive (use -store)")
	case *dir != "":
		storeRef = *dir
	case *store == "":
		return fmt.Errorf("-store is required (s3://bucket[/prefix], file://dir, or a directory path)")
	}
	lg, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *pprofOn && *admin == "" {
		return fmt.Errorf("-pprof requires -admin: profiling endpoints are bearer-gated")
	}
	peerURLs, err := parsePeers(*peers)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	if *advertise != "" {
		if _, err := parsePeers(*advertise); err != nil {
			return fmt.Errorf("-advertise: %w", err)
		}
	}
	seedURLs, err := parsePeers(*join)
	if err != nil {
		return fmt.Errorf("-join: %w", err)
	}
	elastic := *join != "" || *heartbeat > 0
	if *join != "" && *advertise == "" {
		return fmt.Errorf("-join requires -advertise: peers must know this node's public base URL")
	}
	if elastic && *advertise == "" {
		return fmt.Errorf("-heartbeat requires -advertise: membership announces this node's public base URL")
	}
	if (*suspectAfter != 0 || *removeAfter != 0) && !elastic {
		return fmt.Errorf("-suspect-after/-remove-after need elastic membership (-join or -heartbeat)")
	}
	if *suspectAfter < 0 || *removeAfter < 0 || *heartbeat < 0 {
		return fmt.Errorf("membership intervals must be positive")
	}
	var tenants []server.Tenant
	if *tenantsPath != "" {
		if tenants, err = server.LoadTenants(*tenantsPath); err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
	}
	st, err := resolveDaemonStore(storeRef, *storeEndpoint, *storeRegion)
	if err != nil {
		return err
	}
	opts := server.Options{
		MaxInflight:   *limit,
		MaxQueue:      *maxQueue,
		HotCacheBytes: *cache,
		Advertise:     *advertise,
		Peers:         peerURLs,
		AdminToken:    *admin,
		Tenants:       tenants,
		LogRequests:   *verbose,
		Log:           lg,
	}
	if elastic {
		opts.HeartbeatInterval = *heartbeat
		opts.SuspectAfter = *suspectAfter
		opts.RemoveAfter = *removeAfter
		// Wall-clock generations order restarts: a node that comes back on
		// the same address always announces a generation newer than the
		// incarnation its peers remember.
		opts.Generation = time.Now().UnixNano()
	}
	srv, err := server.New(context.Background(), st, opts)
	if err != nil {
		return fmt.Errorf("store %s: %w", storeRef, err)
	}
	names := srv.Datasets()
	if len(names) == 0 {
		lg.Warn("no datasets (no *.manifest keys)", slog.String("store", storeRef))
	}
	lg.Info("serving",
		slog.Int("datasets", len(names)),
		slog.Any("names", names),
		slog.String("store", storeRef),
		slog.String("addr", *addr),
		slog.Int("limit", *limit),
		slog.Int("peers", len(peerURLs)),
		slog.Bool("hot_publish", *admin != ""),
		slog.Int("tenants", len(tenants)),
		slog.Bool("elastic", elastic),
		slog.Bool("pprof", *pprofOn))

	handler := http.Handler(srv)
	if *pprofOn {
		handler = withPprof(srv, *admin)
	}
	// ReadHeaderTimeout keeps a slow-loris peer from pinning a connection
	// forever; fragment bodies themselves are never read by the server.
	hs := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if elastic {
		// Announce after the listener goroutine is up so a seed's
		// anti-entropy probe of this node can already be answered.
		if err := srv.StartMembership(context.Background(), *advertise, seedURLs); err != nil {
			return fmt.Errorf("-join: %w", err)
		}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		lg.Info("draining", slog.String("signal", s.String()))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if elastic {
			// Deregister before the listener closes: peers drop this node
			// from their membership (and clients from their views) instead
			// of waiting out the suspicion window.
			srv.Drain()
			srv.LeaveCluster(ctx)
			srv.StopMembership()
		}
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}
