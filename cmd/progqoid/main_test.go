package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func writeArchiveDir(t *testing.T, dir string) []*core.Variable {
	t.Helper()
	ds := datagen.GE("GE-daemon", 4, 96, 7)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	return vars
}

func TestNewServerServesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)
	srv, err := newServer(dir, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Datasets(); len(got) != 1 || got[0] != "ge" {
		t.Fatalf("datasets = %v", got)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Datasets != 1 {
		t.Fatalf("healthz = %+v", st)
	}
}

func TestRunRequiresDir(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -dir accepted")
	}
}
