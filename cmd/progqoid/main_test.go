package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
	"progqoi/internal/storage/objstore/miniobj"
)

func writeArchiveDir(t *testing.T, dir string) []*core.Variable {
	t.Helper()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return writeArchiveStore(t, st)
}

// writeArchiveStore packs the test dataset "ge" into any store — a
// directory for the legacy path, an object-store client for the
// stateless-tier tests (where the pack doubles as signed-PUT coverage).
func writeArchiveStore(t *testing.T, st storage.Store) []*core.Variable {
	t.Helper()
	ds := datagen.GE("GE-daemon", 4, 96, 7)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	return vars
}

func TestNewServerServesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)
	srv, err := newServer(context.Background(), dir, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Datasets(); len(got) != 1 || got[0] != "ge" {
		t.Fatalf("datasets = %v", got)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Datasets != 1 {
		t.Fatalf("healthz = %+v", st)
	}
}

func TestRunRequiresDir(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -dir accepted")
	}
}

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("http://a:1,https://b:2/, http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "https://b:2", "http://c:3"}
	if len(got) != 3 {
		t.Fatalf("peers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if p, err := parsePeers(""); err != nil || p != nil {
		t.Fatalf("empty list: %v %v", p, err)
	}
	for _, bad := range []string{"not-a-url", "ftp://x:1", "http://a:1,,http://b:2", "http://a:1,"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("malformed peers %q accepted", bad)
		}
	}
}

func TestClusterFlagsReachClusterEndpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)
	srv, err := newClusterServer(context.Background(), dir, 8, 0, "http://me:9123", []string{"http://peer:9123"}, "", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var info server.ClusterInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Advertise != "http://me:9123" || len(info.Peers) != 1 || info.Peers[0] != "http://peer:9123" {
		t.Fatalf("cluster info = %+v", info)
	}
}

// TestAdminFlagEnablesReload: the -admin token plumbs through to the hot-
// publish route; without it the route stays disabled.
func TestAdminFlagEnablesReload(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)
	reload := func(srv *server.Server, token string) int {
		hs := httptest.NewServer(srv)
		defer hs.Close()
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/datasets/reload", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	off, err := newClusterServer(context.Background(), dir, 8, 0, "", nil, "", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code := reload(off, "tok"); code != http.StatusForbidden {
		t.Fatalf("reload without -admin: %d", code)
	}
	on, err := newClusterServer(context.Background(), dir, 8, 0, "", nil, "tok", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code := reload(on, "tok"); code != http.StatusOK {
		t.Fatalf("reload with -admin: %d", code)
	}
}

// runErr drives run in a goroutine and returns its error, failing the
// test if the daemon neither errors nor keeps serving as expected.
func runErr(t *testing.T, wantErr bool, args ...string) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- run(args) }()
	select {
	case err := <-errc:
		if wantErr && err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
		return err
	case <-time.After(5 * time.Second):
		t.Fatalf("run(%v) did not return", args)
		return nil
	}
}

func TestRunStartupErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)

	t.Run("missing dir flag", func(t *testing.T) {
		runErr(t, true)
	})
	t.Run("unknown flag", func(t *testing.T) {
		runErr(t, true, "-no-such-flag")
	})
	t.Run("dir is a file", func(t *testing.T) {
		f := filepath.Join(t.TempDir(), "plain")
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		runErr(t, true, "-dir", f)
	})
	t.Run("malformed peers", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-peers", "not-a-url")
		if err == nil || !strings.Contains(err.Error(), "-peers") {
			t.Fatalf("error %v does not name -peers", err)
		}
	})
	t.Run("malformed advertise", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-advertise", "nope")
		if err == nil || !strings.Contains(err.Error(), "-advertise") {
			t.Fatalf("error %v does not name -advertise", err)
		}
	})
	t.Run("busy port", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		err = runErr(t, true, "-dir", dir, "-addr", ln.Addr().String())
		if err == nil || !strings.Contains(strings.ToLower(err.Error()), "address already in use") {
			t.Fatalf("busy port error = %v", err)
		}
	})
	t.Run("corrupt archive dir", func(t *testing.T) {
		bad := t.TempDir()
		if err := os.WriteFile(filepath.Join(bad, "ds.manifest"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		runErr(t, true, "-dir", bad)
	})
	t.Run("join requires advertise", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-join", "http://seed:9123")
		if err == nil || !strings.Contains(err.Error(), "-advertise") {
			t.Fatalf("error %v does not demand -advertise", err)
		}
	})
	t.Run("heartbeat requires advertise", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-heartbeat", "50ms")
		if err == nil || !strings.Contains(err.Error(), "-advertise") {
			t.Fatalf("error %v does not demand -advertise", err)
		}
	})
	t.Run("malformed join seed", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-advertise", "http://n:1", "-join", "nope")
		if err == nil || !strings.Contains(err.Error(), "-join") {
			t.Fatalf("error %v does not name -join", err)
		}
	})
	t.Run("membership timers need elastic mode", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-suspect-after", "1s")
		if err == nil || !strings.Contains(err.Error(), "elastic") {
			t.Fatalf("error %v does not explain the elastic requirement", err)
		}
	})
	t.Run("negative heartbeat rejected", func(t *testing.T) {
		err := runErr(t, true, "-dir", dir, "-advertise", "http://n:1", "-heartbeat", "-1s")
		if err == nil {
			t.Fatal("negative heartbeat accepted")
		}
	})
}

// clearS3Env isolates a subtest from any ambient PROGQOI_S3_*
// configuration so the store-validation cases exercise exactly the flags
// they pass.
func clearS3Env(t *testing.T) {
	t.Helper()
	for _, k := range []string{objstore.EnvEndpoint, objstore.EnvAccessKey, objstore.EnvSecretKey, objstore.EnvRegion} {
		t.Setenv(k, "")
	}
}

// TestRunStoreValidation covers the -store startup contract: malformed or
// unsupported references fail with a typed error before any listener
// binds, and an s3 reference is probed at boot so a dead or denying
// bucket cannot produce a half-alive daemon.
func TestRunStoreValidation(t *testing.T) {
	t.Run("dir and store are mutually exclusive", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "arch")
		writeArchiveDir(t, dir)
		err := runErr(t, true, "-dir", dir, "-store", dir)
		if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Fatalf("error %v does not say the flags conflict", err)
		}
	})
	t.Run("unknown scheme", func(t *testing.T) {
		err := runErr(t, true, "-store", "gs://bucket/prefix")
		if !errors.Is(err, objstore.ErrBadStoreURL) {
			t.Fatalf("gs:// error = %v, want ErrBadStoreURL", err)
		}
	})
	t.Run("missing bucket", func(t *testing.T) {
		err := runErr(t, true, "-store", "s3://")
		if !errors.Is(err, objstore.ErrBadStoreURL) {
			t.Fatalf("bucketless error = %v, want ErrBadStoreURL", err)
		}
	})
	t.Run("s3 without endpoint", func(t *testing.T) {
		clearS3Env(t)
		err := runErr(t, true, "-store", "s3://bucket/prefix")
		if !errors.Is(err, objstore.ErrBadStoreURL) {
			t.Fatalf("endpointless error = %v, want ErrBadStoreURL", err)
		}
	})
	t.Run("unreachable endpoint", func(t *testing.T) {
		clearS3Env(t)
		err := runErr(t, true, "-store", "s3://bucket", "-store-endpoint", "http://127.0.0.1:1")
		if err == nil || !strings.Contains(err.Error(), "store s3://bucket") {
			t.Fatalf("unreachable-endpoint error %v does not name the store", err)
		}
	})
	t.Run("access denied at boot", func(t *testing.T) {
		clearS3Env(t)
		srv := miniobj.New("bkt", miniobj.Credentials{AccessKey: "AK", SecretKey: "SK"})
		defer srv.Close()
		srv.Deny403(true)
		t.Setenv(objstore.EnvAccessKey, "AK")
		t.Setenv(objstore.EnvSecretKey, "SK")
		err := runErr(t, true, "-store", "s3://bkt", "-store-endpoint", srv.URL())
		if !errors.Is(err, objstore.ErrAccessDenied) {
			t.Fatalf("denied-bucket error = %v, want ErrAccessDenied", err)
		}
	})
}

// TestStoreFlagServesFromObjectStore is the daemon-level stateless-tier
// check: the catalog and every fragment come from a mock bucket reached
// through -store s3:// with zero archive bytes on local disk, and
// file://dir resolves to the same catalog as the legacy bare path.
func TestStoreFlagServesFromObjectStore(t *testing.T) {
	ctx := context.Background()
	srv := miniobj.New("bkt", miniobj.Credentials{AccessKey: "AK", SecretKey: "SK"})
	defer srv.Close()
	seed, err := objstore.New(objstore.Options{
		Endpoint: srv.URL(), Bucket: "bkt", Prefix: "team/v1",
		AccessKey: "AK", SecretKey: "SK",
	})
	if err != nil {
		t.Fatal(err)
	}
	writeArchiveStore(t, seed)

	t.Setenv(objstore.EnvEndpoint, srv.URL())
	t.Setenv(objstore.EnvAccessKey, "AK")
	t.Setenv(objstore.EnvSecretKey, "SK")
	t.Setenv(objstore.EnvRegion, "")
	s, err := newServer(ctx, "s3://bkt/team/v1", 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Datasets(); len(got) != 1 || got[0] != "ge" {
		t.Fatalf("datasets from bucket = %v", got)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/v1/d/ge/index")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // status is the assertion
	resp.Body.Close()              //nolint:errcheck // test request
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/d/ge/index = %d", resp.StatusCode)
	}

	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)
	viaFile, err := newServer(ctx, "file://"+dir, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := viaFile.Datasets(); len(got) != 1 || got[0] != "ge" {
		t.Fatalf("datasets via file:// = %v", got)
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}

func TestNewLoggerValidation(t *testing.T) {
	for _, tc := range []struct {
		format, level string
		ok            bool
	}{
		{"text", "info", true},
		{"json", "debug", true},
		{"text", "WARN", true}, // level is case-insensitive
		{"yaml", "info", false},
		{"text", "loud", false},
	} {
		_, err := newLogger(tc.format, tc.level)
		if (err == nil) != tc.ok {
			t.Errorf("newLogger(%q, %q) err = %v, want ok=%v", tc.format, tc.level, err, tc.ok)
		}
	}
}

// TestPprofGating covers the -pprof contract: the flag demands -admin, and
// the mounted /debug/pprof/ routes answer only to the admin bearer token
// while normal service routes stay public.
func TestPprofGating(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	writeArchiveDir(t, dir)

	err := runErr(t, true, "-dir", dir, "-pprof")
	if err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Fatalf("-pprof without -admin: err = %v, want mention of -admin", err)
	}

	srv, err := newServer(context.Background(), dir, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(withPprof(srv, "sekrit"))
	defer hs.Close()

	get := func(path, auth string) int {
		t.Helper()
		req, err := http.NewRequest("GET", hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	if s := get("/debug/pprof/", ""); s != http.StatusUnauthorized {
		t.Errorf("unauthenticated pprof index: status %d, want 401", s)
	}
	if s := get("/debug/pprof/heap", "Bearer wrong"); s != http.StatusUnauthorized {
		t.Errorf("wrong-token pprof heap: status %d, want 401", s)
	}
	if s := get("/debug/pprof/", "Bearer sekrit"); s != http.StatusOK {
		t.Errorf("authenticated pprof index: status %d, want 200", s)
	}
	if s := get("/debug/pprof/heap", "Bearer sekrit"); s != http.StatusOK {
		t.Errorf("authenticated pprof heap: status %d, want 200", s)
	}
	// Non-pprof routes fall through ungated.
	if s := get("/healthz", ""); s != http.StatusOK {
		t.Errorf("healthz through pprof wrapper: status %d, want 200", s)
	}
}
