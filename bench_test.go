package progqoi

// bench_test.go is the benchmark harness of deliverable (d): one benchmark
// per paper table/figure (regenerating its rows at benchmark scale), plus
// ablation benchmarks for the design decisions called out in DESIGN.md.
// `go test -bench=. -benchmem` runs everything; cmd/experiments prints the
// full-scale rows.

import (
	"context"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/experiments"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
)

var quick = experiments.Opts{Quick: true}

func benchExperiment(b *testing.B, fn func(context.Context, experiments.Opts) string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := fn(context.Background(), quick)
		if len(out) < 50 {
			b.Fatalf("experiment output too short: %q", out)
		}
	}
}

// BenchmarkTable3_Datasets regenerates the dataset inventory (Table III).
func BenchmarkTable3_Datasets(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkFig2_CompressorBitrates regenerates the requested-error vs
// bitrate comparison of the four progressive compressors (Fig. 2).
func BenchmarkFig2_CompressorBitrates(b *testing.B) { benchExperiment(b, experiments.Fig2) }

// BenchmarkFig3_BasisEstimates regenerates the OB vs HB requested /
// estimated / real error comparison (Fig. 3).
func BenchmarkFig3_BasisEstimates(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4_GEQoIControl regenerates QoI error control on GE-small for
// Equations (1)–(6) (Fig. 4).
func BenchmarkFig4_GEQoIControl(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkFig5_NYXHurricaneVTOT regenerates total-velocity error control
// on NYX and Hurricane (Fig. 5).
func BenchmarkFig5_NYXHurricaneVTOT(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkFig6_S3DMolarProducts regenerates molar-concentration product
// control on S3D (Fig. 6).
func BenchmarkFig6_S3DMolarProducts(b *testing.B) { benchExperiment(b, experiments.Fig6) }

// BenchmarkFig7_RetrievalEfficiencyGE regenerates the per-method bitrate
// comparison on GE-small (Fig. 7).
func BenchmarkFig7_RetrievalEfficiencyGE(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkFig8_RetrievalEfficiencyS3D regenerates the per-method bitrate
// comparison on S3D (Fig. 8).
func BenchmarkFig8_RetrievalEfficiencyS3D(b *testing.B) { benchExperiment(b, experiments.Fig8) }

// BenchmarkTable4_RefactorRetrieveTime regenerates the wall-time table
// (Table IV).
func BenchmarkTable4_RefactorRetrieveTime(b *testing.B) { benchExperiment(b, experiments.Table4) }

// BenchmarkFig9_RemoteTransfer regenerates the remote-transfer experiment
// over the simulated Globus link (Fig. 9).
func BenchmarkFig9_RemoteTransfer(b *testing.B) { benchExperiment(b, experiments.Fig9) }

// --- Ablation benchmarks (DESIGN.md "Key design decisions") ---

func ablationDataset() *datagen.Dataset { return datagen.GE("GE-ablate", 16, 256, 77) }

func retrieveVTOT(b *testing.B, vars []*core.Variable, cfg core.Config, rel float64, ds *datagen.Dataset) int64 {
	b.Helper()
	rt, err := core.NewRetriever(vars, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	vtot := []qoi.QoI{ds.QoIs[0]}
	ranges := core.QoIRanges(vtot, ds.Fields)
	res, err := rt.Retrieve(context.Background(), core.Request{
		QoIs:       vtot,
		Tolerances: []float64{rel * ranges[0]},
		InitRel:    []float64{rel},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.RetrievedBytes
}

func refactorFor(b *testing.B, ds *datagen.Dataset, m progressive.Method, order progressive.Order) []*core.Variable {
	b.Helper()
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: m, LosslessTail: true, Order: order},
		MaskZeros:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return vars
}

// BenchmarkAblationBasisOB vs ...HB: the decomposition-basis choice (§V-B);
// HB should retrieve fewer bytes and refactor faster.
func BenchmarkAblationBasisOB(b *testing.B) {
	ds := ablationDataset()
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		vars := refactorFor(b, ds, progressive.PMGARD, progressive.GreedyOrder)
		bytes = retrieveVTOT(b, vars, core.Config{}, 1e-4, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationBasisHB is the hierarchical-basis counterpart.
func BenchmarkAblationBasisHB(b *testing.B) {
	ds := ablationDataset()
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
		bytes = retrieveVTOT(b, vars, core.Config{}, 1e-4, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationFragmentOrderGreedy vs ...LevelMajor: the PMGARD
// fragment schedule (greedy benefit-per-byte vs naive level-major).
func BenchmarkAblationFragmentOrderGreedy(b *testing.B) {
	ds := ablationDataset()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = retrieveVTOT(b, vars, core.Config{}, 1e-2, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationFragmentOrderLevelMajor is the naive-order counterpart.
func BenchmarkAblationFragmentOrderLevelMajor(b *testing.B) {
	ds := ablationDataset()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.LevelMajorOrder)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = retrieveVTOT(b, vars, core.Config{}, 1e-2, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationTighten sweeps Algorithm 4's tightening factor c.
func BenchmarkAblationTighten(b *testing.B) {
	ds := ablationDataset()
	for _, c := range []float64{1.1, 1.5, 2.0, 4.0} {
		b.Run(benchName(c), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
				bytes = retrieveVTOT(b, vars, core.Config{TightenFactor: c}, 1e-4, ds)
			}
			b.ReportMetric(float64(bytes), "bytes/retrieval")
		})
	}
}

func benchName(c float64) string {
	switch c {
	case 1.1:
		return "c=1.1"
	case 1.5:
		return "c=1.5"
	case 2.0:
		return "c=2.0"
	default:
		return "c=4.0"
	}
}

// BenchmarkAblationMaskOn vs ...Off: the exact-zero outlier mask (§V-A).
func BenchmarkAblationMaskOn(b *testing.B) {
	ds := ablationDataset()
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
		bytes = retrieveVTOT(b, vars, core.Config{}, 1e-3, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationMaskOff disables the mask; sqrt estimates at near-zero
// radicands force deeper retrieval.
func BenchmarkAblationMaskOff(b *testing.B) {
	ds := ablationDataset()
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
		rt, err := core.NewRetriever(vars, core.Config{DisableMask: true}, nil)
		if err != nil {
			b.Fatal(err)
		}
		vtot := []qoi.QoI{ds.QoIs[0]}
		ranges := core.QoIRanges(vtot, ds.Fields)
		res, _ := rt.Retrieve(context.Background(), core.Request{
			QoIs:       vtot,
			Tolerances: []float64{1e-3 * ranges[0]},
			InitRel:    []float64{1e-3},
		})
		if res != nil {
			bytes = res.RetrievedBytes
		}
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationEstimatorTheorem vs ...Interval: the paper's
// theorem-based QoI error estimator against the interval-arithmetic
// baseline. Both certify the same guarantee; tightness and speed differ.
func BenchmarkAblationEstimatorTheorem(b *testing.B) {
	ds := ablationDataset()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = retrieveVTOT(b, vars, core.Config{Estimator: qoi.TheoremBound}, 1e-4, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkAblationEstimatorInterval is the interval-arithmetic estimator.
func BenchmarkAblationEstimatorInterval(b *testing.B) {
	ds := ablationDataset()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = retrieveVTOT(b, vars, core.Config{Estimator: qoi.IntervalBound}, 1e-4, ds)
	}
	b.ReportMetric(float64(bytes), "bytes/retrieval")
}

// BenchmarkEndToEndRefactorGESmall times Algorithm 1 on the full GE-small
// stand-in with the default method.
func BenchmarkEndToEndRefactorGESmall(b *testing.B) {
	ds := datagen.GESmall()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
			Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
			MaskZeros:   true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndRetrieveVTOT times one full QoI-certified retrieval at
// τ_rel = 1e-4 on GE-small.
func BenchmarkEndToEndRetrieveVTOT(b *testing.B) {
	ds := datagen.GESmall()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retrieveVTOT(b, vars, core.Config{}, 1e-4, ds)
	}
}
