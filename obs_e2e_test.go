package progqoi

// obs_e2e_test.go proves the observability layer end to end over a real
// HTTP fragment service: a traced remote Session.Do must account every
// wire byte in its fetch spans exactly (including speculative read-ahead),
// propagate its request ID to the server and back, and render a valid
// Chrome trace_event document. The paired benchmarks prove the untraced
// retrieval path pays nothing for the instrumentation.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"progqoi/internal/datagen"
	"progqoi/internal/obs"
)

// headerRecorder wraps a handler and keeps every X-Request-Id value the
// server receives, so tests can prove client-side IDs reach the service.
type headerRecorder struct {
	next http.Handler
	mu   sync.Mutex
	ids  []string
}

func (h *headerRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if id := r.Header.Get(obs.RequestIDHeader); id != "" {
		h.mu.Lock()
		h.ids = append(h.ids, id)
		h.mu.Unlock()
	}
	h.next.ServeHTTP(w, r)
}

func (h *headerRecorder) seen() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.ids...)
}

func TestTraceReconcilesWireBytesEndToEnd(t *testing.T) {
	ds := datagen.GE("GE-trace-e2e", 4, 300, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	rec := &headerRecorder{next: serveArchiveHandler(t, arch, "ge")}
	hs := httptest.NewServer(rec)
	defer hs.Close()

	// ReadAhead makes the reconciliation interesting: speculative fetches
	// increment WireBytes from a background goroutine, so the trace must
	// capture their spans too or the books would not balance.
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge", WithReadAhead(2))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	sess, err := rarch.Open(WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	res, err := sess.Do(context.Background(), Request{
		Targets: []Target{{QoI: vtot, Tolerance: QoIRanges([]QoI{vtot}, ds.Fields)[0] * 1e-4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ToleranceMet {
		t.Fatal("tolerance not met")
	}
	rarch.WaitReadAhead()

	// The acceptance invariant: summed fetch-span bytes equal the client's
	// wire counter exactly — not approximately — because spans end at the
	// very statements that increment the counter.
	st := rarch.RemoteStats()
	if st.WireBytes == 0 {
		t.Fatal("no wire bytes recorded")
	}
	if got := tr.FetchBytes(); got != st.WireBytes {
		t.Fatalf("trace fetch spans sum to %d bytes, Stats.WireBytes = %d", got, st.WireBytes)
	}

	// Every wire request carried the trace's request ID.
	ids := rec.seen()
	if len(ids) == 0 {
		t.Fatal("server saw no X-Request-Id headers")
	}
	for _, id := range ids {
		if id != tr.ID() {
			t.Fatalf("server saw request ID %q, trace ID is %q", id, tr.ID())
		}
	}

	// The span inventory covers every retrieval phase.
	cats := map[string]int{}
	for _, sp := range tr.Spans() {
		cats[sp.Cat]++
	}
	for _, want := range []string{obs.CatDo, obs.CatPlan, obs.CatFetch, obs.CatDecode, obs.CatCommit, obs.CatEstimate, obs.CatHTTP} {
		if cats[want] == 0 {
			t.Errorf("no %q spans recorded (have %v)", want, cats)
		}
	}

	// The rendered Chrome trace is valid JSON in trace_event form.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= len(tr.Spans()) {
		t.Fatalf("trace document has %d events for %d spans (metadata missing?)", len(doc.TraceEvents), len(tr.Spans()))
	}

	// The response echoed the request ID back (header round trip).
	req, err := http.NewRequest("GET", hs.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "abc-123" {
		t.Fatalf("echoed request ID %q, want %q", got, "abc-123")
	}
}

// TestTraceSharedAcrossSequentialSessions checks a single Trace can record
// several sessions' retrievals and still reconcile against the cumulative
// wire counter.
func TestTraceSharedAcrossSequentialSessions(t *testing.T) {
	ds := datagen.GE("GE-trace-shared", 3, 200, 4)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	hs := serveArchive(t, arch, "ge")
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	vtot := TotalVelocity(0, 1, 2)
	rng := QoIRanges([]QoI{vtot}, ds.Fields)[0]
	for _, rel := range []float64{1e-2, 1e-4} {
		sess, err := rarch.Open(WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Do(context.Background(), Request{
			Targets: []Target{{QoI: vtot, Tolerance: rng * rel}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tr.FetchBytes(), rarch.RemoteStats().WireBytes; got != want {
		t.Fatalf("shared trace fetch bytes %d != cumulative wire bytes %d", got, want)
	}
}

// TestObsClusterMetricsE2E scrapes /metrics from every node of a live
// 3-node cluster in the middle of a traced Session.Do, runs the output
// through the strict exposition parser, and checks the observability
// families are present with metadata and the counters move. This is the
// in-process twin of the obs-e2e CI step.
func TestObsClusterMetricsE2E(t *testing.T) {
	ds := datagen.GE("GE-obs-cluster", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	nodes := startCluster(t, arch, "ge", 3)

	scrape := func(url string) map[string]*obs.MetricFamily {
		t.Helper()
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
			t.Fatalf("metrics Content-Type %q, want %q", got, want)
		}
		fams, err := obs.ParseExposition(resp.Body)
		if err != nil {
			t.Fatalf("%s/metrics failed strict exposition parse: %v", url, err)
		}
		return fams
	}

	rarch, err := OpenRemote(context.Background(), nodes[0].URL, "ge",
		WithEndpoints(nodes[1].URL, nodes[2].URL))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	sess, err := rarch.Open(WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}

	// Scrape every node mid-retrieval: the first OnProgress callback fires
	// between iterations, while the session holds live server-side state.
	var mid []map[string]*obs.MetricFamily
	req := clusterRequest(t, ds.FieldNames)
	req.OnProgress = func(it Iteration) {
		if mid != nil {
			return
		}
		for _, n := range nodes {
			mid = append(mid, scrape(n.URL))
		}
	}
	if _, err := sess.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("OnProgress never fired; no mid-retrieval scrape happened")
	}

	wantFamilies := map[string]string{
		"progqoid_requests_total":           "counter",
		"progqoid_route_requests_total":     "counter",
		"progqoid_request_duration_seconds": "histogram",
		"progqoid_frags_request_bytes":      "histogram",
		"progqoid_frags_response_bytes":     "histogram",
		"progqoid_fragment_bytes_total":     "counter",
		"progqoid_uptime_seconds":           "gauge",
		"progqoid_goroutines":               "gauge",
		"progqoid_heap_alloc_bytes":         "gauge",
		"progqoid_gc_pause_seconds_total":   "counter",
		// Elastic membership families are always exposed, even on a solo
		// static node (zero-valued), so dashboards need no existence checks.
		"progqoid_cluster_members":          "gauge",
		"progqoid_cluster_epoch":            "gauge",
		"progqoid_cluster_suspect_total":    "counter",
		"progqoid_cluster_drains_total":     "counter",
		"progqoid_cluster_heartbeats_total": "counter",
	}
	for i, fams := range mid {
		for name, typ := range wantFamilies {
			f, ok := fams[name]
			if !ok {
				t.Errorf("node %d: family %s missing mid-retrieval", i, name)
				continue
			}
			if f.Type != typ {
				t.Errorf("node %d: %s TYPE %q, want %q", i, name, f.Type, typ)
			}
			if f.Help == "" {
				t.Errorf("node %d: %s has no HELP", i, name)
			}
			if f.Samples == 0 {
				t.Errorf("node %d: %s exposes no samples", i, name)
			}
		}
	}

	// After the Do completes, the latency histogram must have counted the
	// fragment traffic this retrieval generated on at least one node.
	moved := false
	for _, n := range nodes {
		fams := scrape(n.URL)
		if f := fams["progqoid_request_duration_seconds"]; f != nil && f.Samples > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("no node's request_duration histogram recorded any samples")
	}
}
