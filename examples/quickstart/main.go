// Quickstart: refactor three velocity fields once, then retrieve the total
// velocity QoI at two successively tighter tolerances, reusing every byte
// already fetched. This is the library's minimal end-to-end path.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"progqoi"
)

func main() {
	// A synthetic 256×256 flow: three velocity components.
	const n = 256
	names := []string{"Vx", "Vy", "Vz"}
	fields := make([][]float64, 3)
	for f := range fields {
		data := make([]float64, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				fx, fy := float64(x)/n, float64(y)/n
				data[y*n+x] = 100 * math.Sin(2*math.Pi*(fx+fy)+float64(f)) * math.Cos(2*math.Pi*fx*float64(f+1))
			}
		}
		fields[f] = data
	}

	// Producer side: refactor once into a progressive archive.
	arch, err := progqoi.Refactor(names, fields, []int{n, n})
	if err != nil {
		log.Fatal(err)
	}
	raw := int64(3 * n * n * 8)
	fmt.Printf("archive: %d bytes stored (raw data: %d bytes)\n", arch.StoredBytes(), raw)

	// Consumer side: ask for the total velocity within an error tolerance.
	// Each request is a Do call: a set of targets under one context, with
	// optional per-iteration progress streaming.
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot, err := progqoi.ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", arch.FieldNames())
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	for _, tol := range []float64{1e-2, 1e-5} {
		res, err := sess.Do(ctx, progqoi.Request{
			Targets: []progqoi.Target{{QoI: vtot, Tolerance: tol}},
			OnProgress: func(it progqoi.Iteration) {
				fmt.Printf("  … iter %d: est %.2e, %d bytes so far\n",
					it.N, it.EstErrors[0], it.RetrievedBytes)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		actual := progqoi.ActualQoIErrors([]progqoi.QoI{vtot}, fields, res.Data)
		fmt.Printf("tolerance %8.0e: certified %8.2e, actual %8.2e, retrieved %6.2f%% of raw, %d iterations\n",
			tol, res.EstErrors[0], actual[0], 100*float64(res.RetrievedBytes)/float64(raw), res.Iterations)
	}
}
