// remote_transfer reproduces the paper's Fig. 9 scenario: refactored CFD
// blocks live at a storage site, and a compute site retrieves the total
// velocity QoI across a simulated Globus-class wide-area link with one
// worker per block. Progressive QoI-aware retrieval moves a fraction of the
// raw bytes and beats shipping the originals once any error is tolerable.
//
// With -url the same workload additionally runs against a *real* fragment
// server (internal/server over HTTP): pass "self" to serve the blocks
// in-process on a loopback port, or a base URL of a progqoid already
// hosting datasets block0..block<N-1>. The table then shows the simulated
// wire bytes next to the fragment payload bytes the real client fetched
// over HTTP (the same unit netsim accounts; transport gzip savings are
// not deducted) — identical on the first pass, and smaller for the real
// client afterwards because its fragment cache makes repeated requests
// free.
//
// With -url self -nodes 3 the blocks are served by a 3-node in-process
// cluster instead of one server: fragment fetches shard across the nodes
// by rendezvous hashing (progqoi.WithEndpoints) and the retrieval results
// stay bit-identical — the sharded wire bytes appear in the same column.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"progqoi"
	"progqoi/internal/datagen"
	"progqoi/internal/netsim"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func main() {
	urlFlag := flag.String("url", "", `also retrieve over a real fragment server: "self" serves in-process, otherwise a progqoid base URL hosting block0..blockN datasets`)
	readAhead := flag.Int("readahead", 0, "remote read-ahead pipeline depth (fragments per variable fetched while decoding; 0 = off)")
	nodes := flag.Int("nodes", 1, `with -url self: serve the blocks from this many cluster nodes and shard fetches across them`)
	flag.Parse()

	const workers = 16
	ds := datagen.GE("GE-blocks", workers, 2048, 7)
	blockSize := ds.NumElements() / workers
	names := ds.FieldNames[:3] // VTOT needs the velocity components only
	rawBytes := int64(ds.NumElements()) * 8 * 3

	// One archive per block, like the per-core decomposition in the paper.
	archives := make([]*progqoi.Archive, workers)
	blocks := make([][][]float64, workers)
	for b := 0; b < workers; b++ {
		fields := make([][]float64, 3)
		for f := 0; f < 3; f++ {
			fields[f] = ds.Fields[f][b*blockSize : (b+1)*blockSize]
		}
		blocks[b] = fields
		arch, err := progqoi.Refactor(names, fields, []int{blockSize})
		if err != nil {
			log.Fatal(err)
		}
		archives[b] = arch
	}

	// Optionally stand up / connect to the real server.
	var remotes []*progqoi.Archive
	if *urlFlag != "" {
		bases := []string{*urlFlag}
		if *urlFlag == "self" {
			var err error
			bases, err = serveSelf(archives, max(*nodes, 1))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("serving %d block datasets in-process from %d node(s) at %v\n", workers, len(bases), bases)
		}
		remotes = make([]*progqoi.Archive, workers)
		for b := 0; b < workers; b++ {
			arch, err := progqoi.Open(context.Background(), fmt.Sprintf("%s/block%d", bases[0], b),
				progqoi.WithReadAhead(*readAhead),
				progqoi.WithEndpoints(bases[1:]...))
			if err != nil {
				log.Fatal(err)
			}
			remotes[b] = arch
		}
	}

	link := netsim.DefaultGlobusLink
	link.BandwidthBps = float64(rawBytes) / 11.7 // calibrate: raw baseline ≈ 11.7 s
	rawTime := netsim.RawTransferTime(rawBytes, workers, link)
	fmt.Printf("raw transfer baseline: %.2f MB in %.2f s over %d streams\n\n",
		float64(rawBytes)/1e6, rawTime.Seconds(), workers)

	vtot := progqoi.TotalVelocity(0, 1, 2)
	hdr := fmt.Sprintf("%-10s  %-14s  %-14s  %-8s", "rel tol", "sim wire MB", "transfer (s)", "speedup")
	if remotes != nil {
		hdr += fmt.Sprintf("  %-14s  %s", "real wire MB", "cache hits")
	}
	fmt.Println(hdr)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		res, err := netsim.Run(workers, workers, link, func(b int, rec *netsim.Recorder) error {
			sess, err := archives[b].Open(progqoi.WithFetchObserver(rec.Observe))
			if err != nil {
				return err
			}
			return retrieveBlock(sess, vtot, rel, blocks[b])
		})
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-10.0e  %-14.2f  %-14.2f  %-8s",
			rel, float64(res.TotalBytes)/1e6, res.Makespan.Seconds(),
			fmt.Sprintf("%.2fx", rawTime.Seconds()/res.Makespan.Seconds()))
		if remotes != nil {
			var wire, hits int64
			for b := 0; b < workers; b++ {
				before := remotes[b].RemoteStats()
				sess, err := remotes[b].Open()
				if err != nil {
					log.Fatal(err)
				}
				if err := retrieveBlock(sess, vtot, rel, blocks[b]); err != nil {
					log.Fatal(err)
				}
				after := remotes[b].RemoteStats()
				wire += after.WireBytes - before.WireBytes
				hits += after.CacheHits - before.CacheHits
			}
			row += fmt.Sprintf("  %-14.2f  %d", float64(wire)/1e6, hits)
		}
		fmt.Println(row)
	}
	if remotes != nil {
		fmt.Println("\nreal wire MB < sim wire MB once tolerances tighten: each fresh remote")
		fmt.Println("session re-requests earlier fragments, but the shared client cache")
		fmt.Println("serves them locally — only the marginal fragments cross the wire.")
	}
}

// retrieveBlock asks one session for VTOT at the given relative tolerance.
func retrieveBlock(sess *progqoi.Session, vtot progqoi.QoI, rel float64, fields [][]float64) error {
	ranges := progqoi.QoIRanges([]progqoi.QoI{vtot}, fields)
	if ranges[0] == 0 {
		ranges[0] = 1
	}
	_, err := sess.Do(context.Background(), progqoi.Request{Targets: []progqoi.Target{
		{QoI: vtot, Tolerance: rel, Relative: true, Range: ranges[0]},
	}})
	return err
}

// serveSelf writes every block archive into a MemStore and serves it with
// the real fragment service from n loopback nodes (one store, n servers —
// the same shape as n progqoid daemons over one archive directory),
// returning the base URLs.
func serveSelf(archives []*progqoi.Archive, n int) ([]string, error) {
	ctx := context.Background()
	st := storage.NewMemStore()
	for b, arch := range archives {
		if err := storage.WriteArchive(ctx, st, fmt.Sprintf("block%d", b), arch.Variables()); err != nil {
			return nil, err
		}
	}
	bases := make([]string, n)
	for i := range bases {
		srv, err := server.New(ctx, st, server.Options{})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() {
			if err := http.Serve(ln, srv); err != nil && !strings.Contains(err.Error(), "use of closed") {
				log.Print(err)
			}
		}()
		bases[i] = "http://" + ln.Addr().String()
	}
	return bases, nil
}
