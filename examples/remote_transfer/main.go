// remote_transfer reproduces the paper's Fig. 9 scenario: refactored CFD
// blocks live at a storage site, and a compute site retrieves the total
// velocity QoI across a simulated Globus-class wide-area link with one
// worker per block. Progressive QoI-aware retrieval moves a fraction of the
// raw bytes and beats shipping the originals once any error is tolerable.
package main

import (
	"fmt"
	"log"

	"progqoi"
	"progqoi/internal/datagen"
	"progqoi/internal/netsim"
)

func main() {
	const workers = 16
	ds := datagen.GE("GE-blocks", workers, 2048, 7)
	blockSize := ds.NumElements() / workers
	names := ds.FieldNames[:3] // VTOT needs the velocity components only
	rawBytes := int64(ds.NumElements()) * 8 * 3

	// One archive per block, like the per-core decomposition in the paper.
	archives := make([]*progqoi.Archive, workers)
	blocks := make([][][]float64, workers)
	for b := 0; b < workers; b++ {
		fields := make([][]float64, 3)
		for f := 0; f < 3; f++ {
			fields[f] = ds.Fields[f][b*blockSize : (b+1)*blockSize]
		}
		blocks[b] = fields
		arch, err := progqoi.Refactor(names, fields, []int{blockSize})
		if err != nil {
			log.Fatal(err)
		}
		archives[b] = arch
	}

	link := netsim.DefaultGlobusLink
	link.BandwidthBps = float64(rawBytes) / 11.7 // calibrate: raw baseline ≈ 11.7 s
	rawTime := netsim.RawTransferTime(rawBytes, workers, link)
	fmt.Printf("raw transfer baseline: %.2f MB in %.2f s over %d streams\n\n",
		float64(rawBytes)/1e6, rawTime.Seconds(), workers)

	vtot := progqoi.TotalVelocity(0, 1, 2)
	fmt.Printf("%-10s  %-14s  %-14s  %s\n", "rel tol", "retrieved MB", "transfer (s)", "speedup")
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		res, err := netsim.Run(workers, workers, link, func(b int, rec *netsim.Recorder) error {
			sess, err := archives[b].Open(rec.Observe)
			if err != nil {
				return err
			}
			ranges := progqoi.QoIRanges([]progqoi.QoI{vtot}, blocks[b])
			if ranges[0] == 0 {
				ranges[0] = 1
			}
			_, err = sess.RetrieveRelative([]progqoi.QoI{vtot}, []float64{rel}, ranges)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0e  %-14.2f  %-14.2f  %.2fx\n",
			rel, float64(res.TotalBytes)/1e6, res.Makespan.Seconds(),
			rawTime.Seconds()/res.Makespan.Seconds())
	}
}
