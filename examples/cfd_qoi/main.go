// cfd_qoi retrieves all six GE CFD quantities of interest (total velocity,
// temperature, sound speed, Mach number, total pressure, viscosity —
// Equations 1–6 of the paper) from a refactored CFD dataset, each within
// its own relative tolerance, and verifies the guarantee chain
// actual ≤ estimated ≤ requested.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"progqoi"
	"progqoi/internal/datagen"
)

func main() {
	workers := flag.Int("workers", 0, "retrieval worker pool (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	ds := datagen.GESmall()
	fmt.Printf("dataset: %s, %d points x %d fields (%.1f MB raw)\n",
		ds.Name, ds.NumElements(), len(ds.Fields), float64(ds.TotalBytes())/1e6)

	arch, err := progqoi.Refactor(ds.FieldNames, ds.Fields, ds.Dims,
		progqoi.WithMethod(progqoi.PMGARDHB))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open(progqoi.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	qois := progqoi.GEQoIs()
	ranges := progqoi.QoIRanges(qois, ds.Fields)

	// Mixed requirements, like a real analysis campaign: temperature and
	// viscosity tight, total pressure loose — one relative Target per QoI,
	// certified together in a single Do call.
	rels := []float64{1e-4, 1e-6, 1e-5, 1e-4, 1e-3, 1e-6}
	targets := make([]progqoi.Target, len(qois))
	for k := range qois {
		targets[k] = progqoi.Target{QoI: qois[k], Tolerance: rels[k], Relative: true, Range: ranges[k]}
	}
	res, err := sess.Do(context.Background(), progqoi.Request{Targets: targets})
	if err != nil {
		log.Fatal(err)
	}
	actual := progqoi.ActualQoIErrors(qois, ds.Fields, res.Data)

	fmt.Printf("\n%-6s  %-12s  %-12s  %-12s  %s\n", "QoI", "requested", "estimated", "actual", "ok")
	for k, q := range qois {
		req := rels[k] * ranges[k]
		ok := actual[k] <= res.EstErrors[k] && res.EstErrors[k] <= req
		fmt.Printf("%-6s  %-12.3e  %-12.3e  %-12.3e  %v\n", q.Name, req, res.EstErrors[k], actual[k], ok)
	}
	fmt.Printf("\nretrieved %.2f MB of %.2f MB raw (%d loop iterations, %.2fs)\n",
		float64(res.RetrievedBytes)/1e6, float64(ds.TotalBytes())/1e6, res.Iterations,
		time.Since(start).Seconds())
}
