// Command live_publish demonstrates the full producer-to-server vertical
// of PR 5 end to end, in one process: stream-pack a dataset into an
// archive directory with the parallel ingest pipeline, serve it with the
// fragment service, retrieve it over the wire — then pack a second
// dataset into the directory of the *running* server and publish it with
// one admin reload, proving the consumer needs no restart and the
// pre-publish session keeps working.
//
//	go run ./examples/live_publish
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"progqoi"
	"progqoi/internal/core"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func synthFields(n int, phase float64) ([]string, [][]float64) {
	names := []string{"Vx", "Vy", "Vz"}
	fields := make([][]float64, len(names))
	for f := range fields {
		data := make([]float64, n)
		for i := range data {
			data[i] = 80 * math.Sin(2*math.Pi*float64(i)/float64(n)*float64(f+1)+phase)
		}
		fields[f] = data
	}
	return names, fields
}

// pack streams one dataset into the directory, reporting ingest
// throughput — the same path `progqoi pack -workers` takes.
func pack(ctx context.Context, st storage.Store, dataset string, n int, phase float64) ([]string, [][]float64) {
	names, fields := synthFields(n, phase)
	start := time.Now()
	stored, err := storage.RefactorTo(ctx, st, dataset, names, []int{n}, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
		Workers:     runtime.GOMAXPROCS(0),
	}, func(i int) ([]float64, error) { return fields[i], nil })
	if err != nil {
		log.Fatal(err)
	}
	raw := float64(n*len(names)*8) / (1 << 20)
	fmt.Printf("packed %q: %.1f MiB raw -> %d stored bytes in %v (%.1f MiB/s)\n",
		dataset, raw, stored, time.Since(start).Round(time.Millisecond),
		raw/time.Since(start).Seconds())
	return names, fields
}

func retrieve(ctx context.Context, url, dataset string, names []string, fields [][]float64) {
	arch, err := progqoi.Open(ctx, url+"/"+dataset)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	ranges := progqoi.QoIRanges([]progqoi.QoI{vtot}, fields)
	res, err := sess.Do(ctx, progqoi.Request{Targets: []progqoi.Target{
		{QoI: vtot, Tolerance: 1e-4, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		log.Fatal(err)
	}
	actual := progqoi.ActualQoIErrors([]progqoi.QoI{vtot}, fields, res.Data)
	fmt.Printf("retrieved %q over the wire: certified=%v actual<=est=%v (%d bytes)\n",
		dataset, res.ToleranceMet, actual[0] <= res.EstErrors[0], res.RetrievedBytes)
}

func main() {
	const token = "demo-admin-token"
	dir, err := os.MkdirTemp("", "live_publish")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
	st, err := storage.NewDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Day 0: pack and serve the first dataset.
	namesA, fieldsA := pack(ctx, st, "run-000", 1<<15, 0)
	srv, err := server.New(ctx, st, server.Options{AdminToken: token})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv) // stands in for `progqoid -dir dir -admin TOKEN`
	defer hs.Close()
	retrieve(ctx, hs.URL, "run-000", namesA, fieldsA)

	// Later: a new simulation run lands while the server keeps serving.
	namesB, fieldsB := pack(ctx, st, "run-001", 1<<15, 1.7)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/datasets/reload", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // read-only demo request
	fmt.Printf("hot publish: %s %s\n", resp.Status, body)

	// The new dataset is live without any restart; the old one still is.
	retrieve(ctx, hs.URL, "run-001", namesB, fieldsB)
	retrieve(ctx, hs.URL, "run-000", namesA, fieldsA)
}
