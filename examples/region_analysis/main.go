// region_analysis demonstrates two library extensions beyond the paper's
// core evaluation:
//
//  1. Region-of-interest retrieval over *block-partitioned* archives: the
//     domain is refactored one block per altitude layer (the same layout
//     the paper's 96-block transfer experiment uses), and the total
//     velocity is requested tight only in the "eye" blocks of a hurricane
//     and loose elsewhere — so only the interesting blocks move bytes.
//     (With a single global representation, a Region only scopes where
//     certification is checked; spatial byte savings require partitioned
//     fragments like these.)
//
//  2. A user-defined QoI written as a formula with the extended operator
//     basis: log(1 + U² + V² + W²), using log beyond the paper's Table II.
package main

import (
	"context"
	"fmt"
	"log"

	"progqoi"
	"progqoi/internal/datagen"
)

func main() {
	const nz = 16
	ds := datagen.Hurricane(nz, 48, 48, 44)
	layer := ds.NumElements() / nz
	fmt.Printf("dataset: %s %v, %d altitude blocks of %d points\n", ds.Name, ds.Dims, nz, layer)

	// One archive per altitude layer.
	archives := make([]*progqoi.Archive, nz)
	blocks := make([][][]float64, nz)
	for b := 0; b < nz; b++ {
		fields := make([][]float64, 3)
		for f := 0; f < 3; f++ {
			fields[f] = ds.Fields[f][b*layer : (b+1)*layer]
		}
		blocks[b] = fields
		arch, err := progqoi.Refactor(ds.FieldNames, fields, []int{layer})
		if err != nil {
			log.Fatal(err)
		}
		archives[b] = arch
	}

	vtot := progqoi.TotalVelocity(0, 1, 2)
	logKE, err := progqoi.ParseQoI("logKE", "log(1 + U^2 + V^2 + W^2)", ds.FieldNames)
	if err != nil {
		log.Fatal(err)
	}

	// The storm is strongest at low altitude: blocks 0..3 are the region
	// of interest (tight VTOT); everywhere we keep a loose VTOT and a
	// moderate log-kinetic-energy bound.
	retrieve := func(b int, tightVTOT bool) int64 {
		sess, err := archives[b].Open()
		if err != nil {
			log.Fatal(err)
		}
		ranges := progqoi.QoIRanges([]progqoi.QoI{vtot, logKE}, blocks[b])
		relV := 1e-2
		if tightVTOT {
			relV = 1e-6
		}
		res, err := sess.Do(context.Background(), progqoi.Request{Targets: []progqoi.Target{
			{QoI: vtot, Tolerance: relV, Relative: true, Range: ranges[0]},
			{QoI: logKE, Tolerance: 1e-4, Relative: true, Range: ranges[1]},
		}})
		if err != nil {
			log.Fatal(err)
		}
		return res.RetrievedBytes
	}

	var roiBytes, uniformBytes int64
	for b := 0; b < nz; b++ {
		roiBytes += retrieve(b, b < 4)
	}
	for b := 0; b < nz; b++ {
		uniformBytes += retrieve(b, true)
	}

	raw := ds.TotalBytes()
	fmt.Printf("\nregion-of-interest (tight VTOT in 4/%d blocks): %8d bytes (%5.1f%% of raw)\n",
		nz, roiBytes, 100*float64(roiBytes)/float64(raw))
	fmt.Printf("uniform tight VTOT everywhere:                  %8d bytes (%5.1f%% of raw)\n",
		uniformBytes, 100*float64(uniformBytes)/float64(raw))
	fmt.Printf("RoI retrieval saves %.1f%% of the bytes\n",
		100*(1-float64(roiBytes)/float64(uniformBytes)))
}
