// combustion preserves molar-concentration products on S3D-like combustion
// data: the rate-of-progress intermediates x1·x3, x4·x5, x0·x4, x3·x5 for
// the reactions H + O2 ⇌ O + OH and H2 + O ⇌ H + OH (paper §VI-A, Fig. 6).
// Multiplicative QoIs have near-exact error estimates, so the certified
// bounds hug the actual errors.
package main

import (
	"context"
	"fmt"
	"log"

	"progqoi"
	"progqoi/internal/datagen"
)

func main() {
	ds := datagen.S3DSmall()
	fmt.Printf("dataset: %s, %v grid, %d species (%.1f MB raw)\n",
		ds.Name, ds.Dims, len(ds.Fields), float64(ds.TotalBytes())/1e6)

	arch, err := progqoi.Refactor(ds.FieldNames, ds.Fields, ds.Dims,
		progqoi.WithMethod(progqoi.PSZ3Delta)) // snapshot methods shine on smooth species fields
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}

	qois := ds.QoIs
	ranges := progqoi.QoIRanges(qois, ds.Fields)
	raw := float64(ds.TotalBytes())

	for _, rel := range []float64{1e-3, 1e-5, 1e-7} {
		targets := make([]progqoi.Target, len(qois))
		for k := range qois {
			targets[k] = progqoi.Target{QoI: qois[k], Tolerance: rel, Relative: true, Range: ranges[k]}
		}
		res, err := sess.Do(context.Background(), progqoi.Request{Targets: targets})
		if err != nil {
			log.Fatal(err)
		}
		actual := progqoi.ActualQoIErrors(qois, ds.Fields, res.Data)
		fmt.Printf("\nrelative tolerance %.0e (retrieved %.1f%% of raw so far):\n",
			rel, 100*float64(res.RetrievedBytes)/raw)
		for k, q := range qois {
			fmt.Printf("  %-6s estimated %.3e  actual %.3e  (tolerance %.3e)\n",
				q.Name, res.EstErrors[k], actual[k], rel*ranges[k])
		}
	}
}
