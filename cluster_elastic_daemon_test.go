package progqoi

// cluster_elastic_daemon_test.go is the daemon twin of the elastic
// membership suite: real progqoid processes form a cluster with
// -join/-heartbeat, and the rolling-restart and drain proofs from
// cluster_elastic_test.go are replayed against them — SIGKILL plus a
// same-address relaunch with a higher generation, and an admin-gated
// drain under load. Gated on PROGQOID_BIN like the rest of the daemon
// matrix (the cluster-e2e CI job builds the binary with -race).

import (
	"context"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// startElasticDaemon launches one progqoid in elastic mode and waits for
// /healthz. seeds empty makes it a joinable founding node (-heartbeat
// alone turns membership on).
func startElasticDaemon(t *testing.T, bin, dir, addr, admin string, seeds []string) *daemonNode {
	t.Helper()
	args := []string{
		"-dir", dir,
		"-addr", addr,
		"-advertise", "http://" + addr,
		"-heartbeat", "25ms",
		"-suspect-after", "150ms",
		"-remove-after", "600ms",
	}
	if len(seeds) > 0 {
		args = append(args, "-join", strings.Join(seeds, ","))
	}
	if admin != "" {
		args = append(args, "-admin", admin)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	node := &daemonNode{url: "http://" + addr, cmd: cmd}
	t.Cleanup(func() {
		node.cmd.Process.Kill() //nolint:errcheck // may already be dead
		node.cmd.Wait()         //nolint:errcheck
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(node.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return node
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %s never became healthy: %v", node.url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestElasticDaemonRollingRestart SIGKILLs every node of a real elastic
// daemon cluster — one per Do of the tightening sequence — and relaunches
// each on the SAME address, where its fresh (higher) generation must win
// over the dead incarnation's membership entry. The client follows the
// churn through its topology refresher; results stay bit-identical.
func TestElasticDaemonRollingRestart(t *testing.T) {
	bin := os.Getenv("PROGQOID_BIN")
	if bin == "" {
		t.Skip("set PROGQOID_BIN to a built progqoid binary to run the elastic daemon e2e")
	}

	ds := datagen.GE("GE-daemon-roll", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, "ge", arch.Variables()); err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	addrs := freeAddrs(t, 3)
	nodes := make([]*daemonNode, 3)
	var seeds []string
	for i, addr := range addrs {
		nodes[i] = startElasticDaemon(t, bin, dir, addr, "", seeds)
		seeds = append(seeds, nodes[i].url)
	}
	for _, n := range nodes {
		waitMembership(t, n.url, func(info server.ClusterInfo) bool {
			alive := 0
			for _, m := range info.Members {
				if m.State == server.MemberAlive {
					alive++
				}
			}
			return alive == 3
		})
	}

	rarch, err := OpenRemote(context.Background(), nodes[0].url, "ge",
		WithEndpoints(nodes[1].url, nodes[2].url),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()

	// Record each incarnation's generation: the same-address rejoin must
	// present a HIGHER one, or peers would reject it as the stale dead
	// incarnation announcing late.
	gen0 := map[string]int64{}
	info, err := clusterInfoFrom(t, nodes[0].url)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range info.Members {
		gen0[m.Addr] = m.Generation
	}

	restarts := 0
	remote := doSequence(t, rarch, ds.FieldNames, func(step int, it Iteration) {
		if step == restarts && restarts < 3 && it.N == 1 {
			victim := nodes[restarts]
			if err := victim.cmd.Process.Kill(); err != nil {
				t.Errorf("kill %s: %v", victim.url, err)
			}
			victim.cmd.Wait() //nolint:errcheck // SIGKILL is the point
			// Same address, new process: its Generation (boot time) is
			// higher, so peers replace the dead incarnation instead of
			// rejecting the rejoin as stale.
			survivor := nodes[(restarts+1)%3].url
			nodes[restarts] = startElasticDaemon(t, bin, dir,
				strings.TrimPrefix(victim.url, "http://"), "", []string{survivor})
			restarts++
			// The new incarnation must be adopted at its peers — alive,
			// with a generation the dead incarnation never had — before
			// this Do's remaining iterations proceed.
			waitMembership(t, survivor, func(info server.ClusterInfo) bool {
				for _, m := range info.Members {
					if m.Addr == victim.url && m.State == server.MemberAlive && m.Generation > gen0[m.Addr] {
						return true
					}
				}
				return false
			})
		}
	})
	if restarts != 3 {
		t.Fatalf("only %d of 3 daemons were restarted mid-Do", restarts)
	}
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}
	// The fully restarted cluster converges back to 3 alive members, every
	// one of them a new incarnation.
	waitMembership(t, nodes[0].url, func(info server.ClusterInfo) bool {
		fresh := 0
		for _, m := range info.Members {
			if m.State == server.MemberAlive && m.Generation > gen0[m.Addr] {
				fresh++
			}
		}
		return fresh == 3
	})
}

// TestElasticDaemonDrain drains one daemon of a live elastic cluster via
// the admin-gated endpoint while a session retrieves: the node leaves
// the routable topology, refuses new sessions at its front door, and the
// retrieval completes bit-identically without it.
func TestElasticDaemonDrain(t *testing.T) {
	bin := os.Getenv("PROGQOID_BIN")
	if bin == "" {
		t.Skip("set PROGQOID_BIN to a built progqoid binary to run the elastic daemon e2e")
	}

	ds := datagen.GE("GE-daemon-drain", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, "ge", arch.Variables()); err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	addrs := freeAddrs(t, 3)
	nodes := make([]*daemonNode, 3)
	var seeds []string
	for i, addr := range addrs {
		nodes[i] = startElasticDaemon(t, bin, dir, addr, "sesame", seeds)
		seeds = append(seeds, nodes[i].url)
	}
	rarch, err := OpenRemote(context.Background(), nodes[0].url, "ge",
		WithEndpoints(nodes[1].url, nodes[2].url),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()

	victim := nodes[2]
	drained := false
	remote := doSequence(t, rarch, ds.FieldNames, func(step int, it Iteration) {
		if !drained {
			drained = true
			req, err := http.NewRequest(http.MethodPost, victim.url+"/v1/cluster/drain", nil)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Authorization", "Bearer sesame")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("drain: status %d", resp.StatusCode)
			}
			waitRoutable(t, rarch, nil, []string{victim.url})
		}
	})
	if !drained {
		t.Fatal("drain never happened mid-Do")
	}
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}
	resp, err := http.Get(victim.url + "/v1/d/ge/index")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("drained daemon index: status %d, want 503", resp.StatusCode)
	}
}
