package progqoi

// objstore_e2e_test.go certifies the stateless serving tier end to end:
// archives live only in an S3-compatible bucket (the hermetic miniobj
// mock), and every consumer path — direct s3:// Open, a single fragment
// service, a 3-node sharded cluster — must produce retrievals
// bit-identical to a local session while fetching fragments with
// authenticated ranged GETs. The fault matrix drives the transport
// through 403 at boot, 503 and truncation mid-Do, and a bucket
// republished mid-session, which must surface as a typed error rather
// than stale bytes. The reconciliation check ties three independent
// ledgers together: per-fetch trace spans, the store's cold-fetch
// counters, and the daemon's /metrics exposition.
//
// Everything is in-process and hermetic; the objstore-e2e CI job runs
// this file under -race.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/obs"
	"progqoi/internal/server"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
	"progqoi/internal/storage/objstore/miniobj"
)

const (
	e2eBucket = "archives"
	e2ePrefix = "team/v1"
	e2eAccess = "AKIDE2E"
	e2eSecret = "e2e-secret/with+chars"
)

// seedBucket refactors the test dataset and packs it into a fresh mock
// bucket through the signed PUT path — no archive bytes ever touch local
// disk. It returns the bucket, the in-memory archive (the ground truth)
// and the generated fields.
func seedBucket(t *testing.T) (*miniobj.Server, *Archive, *datagen.Dataset) {
	t.Helper()
	ds := datagen.GE("GE-objstore", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	srv := miniobj.New(e2eBucket, miniobj.Credentials{AccessKey: e2eAccess, SecretKey: e2eSecret})
	t.Cleanup(srv.Close)
	seed := bucketStore(t, srv, nil)
	if err := storage.WriteArchive(context.Background(), seed, "ge", arch.Variables()); err != nil {
		t.Fatal(err)
	}
	return srv, arch, ds
}

// bucketStore opens an objstore client on the mock bucket with fast
// retry backoff; mutate tweaks the options per test.
func bucketStore(t *testing.T, srv *miniobj.Server, mutate func(*objstore.Options)) *objstore.Store {
	t.Helper()
	o := objstore.Options{
		Endpoint:     srv.URL(),
		Bucket:       e2eBucket,
		Prefix:       e2ePrefix,
		AccessKey:    e2eAccess,
		SecretKey:    e2eSecret,
		RetryBackoff: time.Millisecond,
	}
	if mutate != nil {
		mutate(&o)
	}
	st, err := objstore.New(o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// openBucket opens the seeded dataset through the public s3:// path.
func openBucket(t *testing.T, srv *miniobj.Server, opts ...RemoteOption) *Archive {
	t.Helper()
	ref := fmt.Sprintf("s3://%s/%s/ge", e2eBucket, e2ePrefix)
	opts = append([]RemoteOption{
		WithS3Endpoint(srv.URL()),
		WithS3Credentials(e2eAccess, e2eSecret),
	}, opts...)
	arch, err := Open(context.Background(), ref, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

func doOnce(t *testing.T, arch *Archive, req Request) *Result {
	t.Helper()
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOpenSchemesMatchEndToEnd is the unified-Open acceptance: the same
// dataset reached through a bare path, file://, http:// (fragment
// service) and s3:// (object store) yields bit-identical retrievals.
func TestOpenSchemesMatchEndToEnd(t *testing.T) {
	srv, arch, ds := seedBucket(t)
	req := clusterRequest(t, ds.FieldNames)
	local := doOnce(t, arch, req)

	dir := t.TempDir()
	dst, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), dst, "ge", arch.Variables()); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serveArchiveHandler(t, arch, "ge"))
	defer hs.Close()

	refs := map[string]func(t *testing.T) *Archive{
		"bare path": func(t *testing.T) *Archive {
			a, err := Open(context.Background(), dir+"/ge")
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"file scheme": func(t *testing.T) *Archive {
			a, err := Open(context.Background(), "file://"+dir+"/ge")
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"http scheme": func(t *testing.T) *Archive {
			a, err := Open(context.Background(), hs.URL+"/ge")
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"s3 scheme": func(t *testing.T) *Archive { return openBucket(t, srv) },
	}
	for name, open := range refs {
		t.Run(name, func(t *testing.T) {
			a := open(t)
			mustEqualResults(t, local, doOnce(t, a, req))
			if name == "s3 scheme" {
				if !a.StoreBacked() {
					t.Fatal("s3 archive does not report StoreBacked")
				}
				if st := a.StoreStats(); st.ColdFetches == 0 || st.ColdFetchBytes == 0 {
					t.Fatalf("no cold fetches recorded: %+v", st)
				}
			} else if a.StoreBacked() {
				t.Fatalf("%s archive claims to be store-backed", name)
			}
		})
	}
}

// TestObjstoreFaultMatrix drives the bucket transport through the faults
// the stateless tier must absorb (transient) or refuse (integrity).
func TestObjstoreFaultMatrix(t *testing.T) {
	srv, arch, ds := seedBucket(t)
	req := clusterRequest(t, ds.FieldNames)
	local := doOnce(t, arch, req)

	t.Run("denied bucket fails open with a typed error", func(t *testing.T) {
		srv.Deny403(true)
		defer srv.Deny403(false)
		ref := fmt.Sprintf("s3://%s/%s/ge", e2eBucket, e2ePrefix)
		_, err := Open(context.Background(), ref,
			WithS3Endpoint(srv.URL()), WithS3Credentials(e2eAccess, "wrong-secret"))
		if !errors.Is(err, objstore.ErrAccessDenied) {
			t.Fatalf("open against denied bucket = %v, want ErrAccessDenied", err)
		}
	})

	t.Run("503 and truncation mid-Do are retried bit-identically", func(t *testing.T) {
		// Cache off: every fragment read must survive the wire faults.
		a := openBucket(t, srv, WithCache(-1))
		srv.Fail503(2)
		mustEqualResults(t, local, doOnce(t, a, req))
		srv.TruncateNext(1)
		mustEqualResults(t, local, doOnce(t, a, req))
	})

	t.Run("republished object mid-session errors, never stale bytes", func(t *testing.T) {
		a := openBucket(t, srv, WithCache(-1))
		sess, err := a.Open()
		if err != nil {
			t.Fatal(err)
		}
		loose := clusterRequest(t, ds.FieldNames)
		for i := range loose.Targets {
			loose.Targets[i].Tolerance = 1e-1
		}
		first, err := sess.Do(context.Background(), loose)
		if err != nil {
			t.Fatal(err)
		}
		// The bucket is republished under the session's feet: every
		// variable blob changes, so its pinned ETag no longer matches.
		changed := 0
		for _, k := range srv.Keys() {
			if strings.HasSuffix(k, ".var") && srv.Mutate(k, []byte("republished archive bytes")) {
				changed++
			}
		}
		if changed == 0 {
			t.Fatal("no variable blobs mutated; the fault was never injected")
		}
		_, err = sess.Do(context.Background(), req)
		if !errors.Is(err, objstore.ErrETagChanged) {
			t.Fatalf("tightening over a republished bucket = %v, want ErrETagChanged", err)
		}
		// The certified result from before the republish is untouched.
		if !first.ToleranceMet {
			t.Fatal("pre-republish retrieval lost its certificate")
		}
	})
}

// metricValue scrapes one counter from a Prometheus text exposition.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // test scrape
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("/metrics has no %s", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestObjstoreClusterZeroLocalFiles is the acceptance centerpiece: three
// fragment-service nodes, each backed by its own object-store client over
// one bucket, serve a mixed-target Do with zero archive bytes on local
// disk — bit-identical to local, surviving one node killed mid-Do — and
// the bytes reconcile across all three ledgers: trace spans, cold-fetch
// counters, and /metrics.
func TestObjstoreClusterZeroLocalFiles(t *testing.T) {
	srv, arch, ds := seedBucket(t)
	req := clusterRequest(t, ds.FieldNames)
	local := doOnce(t, arch, req)

	const n = 3
	traces := make([]*obs.Trace, n)
	stores := make([]*objstore.Store, n)
	nodes := make([]*httptest.Server, n)
	for i := range stores {
		traces[i] = obs.NewTrace()
		stores[i] = bucketStore(t, srv, func(o *objstore.Options) { o.Trace = traces[i] })
		fsrv, err := server.New(context.Background(), stores[i], server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(fsrv)
		t.Cleanup(hs.Close)
		nodes[i] = hs
	}

	rarch, err := Open(context.Background(), nodes[0].URL+"/ge",
		WithEndpoints(nodes[1].URL, nodes[2].URL), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	rsess, err := rarch.Open()
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	killed := false
	kreq := req
	kreq.OnProgress = func(it Iteration) {
		if !killed {
			killed = true
			nodes[victim].CloseClientConnections()
			nodes[victim].Close()
		}
	}
	remote, err := rsess.Do(context.Background(), kreq)
	if err != nil {
		t.Fatalf("Do with node %d killed mid-flight: %v", victim, err)
	}
	if !killed {
		t.Fatal("retrieval finished in one iteration; the kill never happened mid-Do")
	}
	mustEqualResults(t, local, remote)
	if st := rarch.RemoteStats(); st.Failovers == 0 {
		t.Fatalf("no rerouted fetches after killing node %d: %+v", victim, st)
	}

	// Reconciliation: on every node the summed bytes of its store-fetch
	// trace spans must equal its cold-fetch counter, and a survivor's
	// /metrics must expose exactly that counter. The cluster as a whole
	// must have actually fetched from the bucket.
	var clusterCold int64
	for i, tr := range traces {
		var spanBytes, spans int64
		for _, sp := range tr.Spans() {
			if sp.Cat == obs.CatStore {
				spanBytes += sp.Bytes
				spans++
			}
		}
		fs := stores[i].FetchStats()
		if spanBytes != fs.ColdFetchBytes {
			t.Fatalf("node %d: %d span bytes over %d store spans != %d cold-fetch bytes",
				i, spanBytes, spans, fs.ColdFetchBytes)
		}
		clusterCold += fs.ColdFetchBytes
	}
	if clusterCold == 0 {
		t.Fatal("no node fetched anything from the bucket")
	}
	survivor := 0
	got := metricValue(t, nodes[survivor].URL, "progqoid_store_cold_fetch_bytes_total")
	if want := float64(stores[survivor].FetchStats().ColdFetchBytes); got != want {
		t.Fatalf("survivor /metrics cold-fetch bytes = %v, store counter = %v", got, want)
	}
	if gets, _, _, _ := srv.Stats(); gets == 0 {
		t.Fatal("mock bucket observed no GETs")
	}
}
